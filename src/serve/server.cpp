#include "serve/server.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "serve/cache_budget.hpp"
#include "tensor/kernels.hpp"
#include "util/affinity.hpp"

namespace easz::serve {

const char* stage_action_name(StageAction action) {
  switch (action) {
    case StageAction::kIdle:
      return "idle";
    case StageAction::kDecode:
      return "decode";
    case StageAction::kForward:
      return "forward";
    case StageAction::kAssemble:
      return "assemble";
  }
  return "?";
}

namespace {

// Stage preference orders (DESIGN.md §9.1). Every worker owns one order and
// walks it until a stage has runnable work — preference first, then
// "stealing" from the other stages so the pool stays work-conserving even
// when a stage runs dry. Assemble precedes decode in every order that does
// not lead with it: finished requests hold decoded-token memory and a
// client promise, so draining them beats admitting new work. The manual
// harness (workers == 0) always uses kAssembleFirst, which makes step()
// trajectories a deterministic function of submit order + clock advances.
constexpr StageAction kForwardFirst[3] = {
    StageAction::kForward, StageAction::kAssemble, StageAction::kDecode};
constexpr StageAction kDecodeFirst[3] = {
    StageAction::kDecode, StageAction::kAssemble, StageAction::kForward};
constexpr StageAction kAssembleFirst[3] = {
    StageAction::kAssemble, StageAction::kForward, StageAction::kDecode};

const StageAction* worker_stage_order(int worker_index) {
  switch (worker_index % 3) {
    case 1:
      return kDecodeFirst;
    case 2:
      return kAssembleFirst;
    default:
      return kForwardFirst;
  }
}

// Pooling is only sound across requests whose forward passes are truly
// interchangeable: same erase mask, same token layout, same precision (an
// int8 forward produces different bytes than fp32, so mixing would make a
// request's output depend on its batch mates) AND same model version — a
// hot swap mid-run must never tear a batch across weights (DESIGN.md §10).
// The channel count is validated against the model at decode time, but the
// key keeps the token dimension anyway so a mixed group can never form.
std::string mask_group_key(const core::EraseMask& mask, int token_dim,
                           nn::Precision precision, std::uint64_t version) {
  const std::vector<std::uint8_t> bytes = mask.to_bytes();
  std::string key(bytes.begin(), bytes.end());
  key.push_back('/');
  key += std::to_string(token_dim);
  key.push_back('/');
  key += nn::precision_name(precision);
  key.push_back('/');
  key += std::to_string(version);
  return key;
}

}  // namespace

ReconServer::ReconServer(ServerConfig config,
                         const core::ReconstructionModel& model)
    : config_(std::move(config)),
      model_(model),
      patchify_(model.config().patchify),
      cache_(config_.cache_bytes, std::max(1, config_.cache_shards)),
      tenants_(config_.sched_clock),
      trace_(static_cast<std::size_t>(std::max(0, config_.trace_spans))),
      hot_(obs_) {
  if (config_.workers < 0) {
    throw std::invalid_argument(
        "ReconServer: workers must be >= 0 (0 = manual scheduling mode)");
  }
  if (config_.workers == 0 &&
      config_.backpressure == BackpressurePolicy::kBlock) {
    // A submitter blocked on queue space could only be freed by a worker
    // popping the queue — and manual mode has none; the thread that would
    // call step() is the one asleep. Fail loudly instead of deadlocking.
    throw std::invalid_argument(
        "ReconServer: manual scheduling mode requires kReject backpressure");
  }
  if (config_.max_queue < 1) {
    throw std::invalid_argument("ReconServer: need a positive queue bound");
  }
  if (config_.max_batch_patches < 1) {
    throw std::invalid_argument("ReconServer: need a positive batch size");
  }
  if (config_.pipeline_depth < 1) {
    throw std::invalid_argument("ReconServer: need a positive pipeline depth");
  }
  assemble_ring_capacity_ =
      static_cast<std::size_t>(config_.pipeline_depth) *
      static_cast<std::size_t>(std::max(1, config_.workers));
  if (config_.shape_batches_to_llc) {
    llc_budget_ = config_.llc_bytes != 0 ? config_.llc_bytes
                                         : CacheBudget::detect_llc_bytes();
    if (llc_budget_ == 0) llc_budget_ = CacheBudget::kDefaultLlcBytes;
  }
  // Version 1: the construction-time model, borrowed (non-owning slot).
  // Precision-policy resolution happens inside make_slot so a misconfigured
  // deployment fails at construction, not per request — and the same check
  // guards every later deploy_model.
  current_slot_ = make_slot(
      std::shared_ptr<const core::ReconstructionModel>(
          &model_, [](const core::ReconstructionModel*) {}),
      next_version_);
  retained_[current_slot_->version] = current_slot_;
  ++next_version_;
  hot_.model_version.set(static_cast<std::int64_t>(current_slot_->version));
  // The registry enforces the int8 capability from here on, so BOTH
  // config-time tenants and later tenants().add() calls fail at
  // configuration time instead of throwing out of every submit.
  tenants_.allow_int8(current_slot_->quantized);
  for (const TenantConfig& tenant : config_.tenants) {
    tenants_.add(tenant);
  }
  if (config_.pin_workers) {
    // Pin BEFORE resizing so the kern pool (re)spawns its lanes pinned.
    // Process-global like kernel_threads: the last server constructed wins.
    tensor::kern::set_pin_threads(true);
  }
  if (config_.kernel_threads > 0) {
    tensor::kern::set_threads(config_.kernel_threads);
  }
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  const int cpus = util::affinity_cpu_count();
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
    if (config_.pin_workers && cpus > 0) {
      // Round-robin over the affinity set; failure (or an unsupported
      // platform) is a silent no-op — pinning is a hint, never a contract.
      util::pin_thread_to_cpu(workers_.back(), i % cpus);
    }
  }
}

ReconServer::~ReconServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ReconServer::register_codec(const std::string& name,
                                 codec::ImageCodec* codec) {
  if (codec == nullptr) {
    throw std::invalid_argument("ReconServer: null codec");
  }
  std::lock_guard<std::mutex> lock(mu_);
  codecs_[name] = codec;
}

double ReconServer::sched_now_s() const {
  if (config_.sched_clock) return config_.sched_clock();
  return uptime_.elapsed_seconds();
}

std::shared_ptr<const ReconServer::ModelSlot> ReconServer::make_slot(
    std::shared_ptr<const core::ReconstructionModel> model,
    std::uint64_t version) const {
  auto slot = std::make_shared<ModelSlot>();
  slot->model = std::move(model);
  slot->version = version;
  // is_quantized() walks every layer — snapshot it once per deploy, never
  // per submit. A slot's model must not be (de)quantized while deployed.
  slot->quantized = slot->model->is_quantized();
  switch (config_.precision) {
    case PrecisionPolicy::kFp32:
      slot->default_precision = nn::Precision::kFp32;
      break;
    case PrecisionPolicy::kInt8:
      if (!slot->quantized) {
        throw std::invalid_argument(
            "ReconServer: precision int8 requires a quantized model "
            "(calibrate_and_quantize or an EAZQ sidecar)");
      }
      slot->default_precision = nn::Precision::kInt8;
      break;
    case PrecisionPolicy::kAuto:
      slot->default_precision =
          slot->quantized ? nn::Precision::kInt8 : nn::Precision::kFp32;
      break;
  }
  // Shaped budgets are per slot: two versions of "the same" architecture
  // can still differ in footprint (e.g. one carries int8 planes).
  slot->shaped_fp32 = config_.max_batch_patches;
  slot->shaped_int8 = config_.max_batch_patches;
  if (config_.shape_batches_to_llc && llc_budget_ > 0) {
    const CacheBudget budget(CacheBudget::footprint_of(slot->model->config()),
                             llc_budget_);
    slot->shaped_fp32 =
        budget.shape_batch(config_.max_batch_patches, nn::Precision::kFp32);
    slot->shaped_int8 =
        budget.shape_batch(config_.max_batch_patches, nn::Precision::kInt8);
  }
  return slot;
}

std::uint64_t ReconServer::deploy_model(
    std::shared_ptr<core::ReconstructionModel> model) {
  if (!model) {
    throw std::invalid_argument("ReconServer: deploy_model needs a model");
  }
  // Token geometry must match the running deployment: queued requests were
  // validated (and decoded) against patchify_/channels, and a swap must
  // never invalidate work already admitted.
  const core::ReconModelConfig& mc = model->config();
  if (mc.patchify.patch != patchify_.patch ||
      mc.patchify.sub_patch != patchify_.sub_patch) {
    throw std::invalid_argument(
        "ReconServer: deploy_model patchify mismatch with the running "
        "deployment");
  }
  if (mc.channels != model_.config().channels) {
    throw std::invalid_argument(
        "ReconServer: deploy_model channel count mismatch with the running "
        "deployment");
  }
  const bool quantized = model->is_quantized();
  if (!quantized && config_.precision == PrecisionPolicy::kInt8) {
    throw std::invalid_argument(
        "ReconServer: deploy_model needs a quantized model under the int8 "
        "precision policy");
  }
  if (!quantized && tenants_.has_int8_pin()) {
    throw std::invalid_argument(
        "ReconServer: deploy_model needs a quantized model while a tenant "
        "pins int8 precision");
  }
  std::uint64_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    version = next_version_++;
    model->set_version(version);
    std::shared_ptr<const ModelSlot> slot = make_slot(std::move(model), version);
    current_slot_ = slot;
    retained_[version] = slot;
    ++deploys_;
    // Prune superseded versions nobody pins. In-flight jobs are safe: they
    // hold their own shared_ptr (the swap epoch guard), so the weights die
    // only when the last batch on them settles.
    const std::vector<std::uint64_t> pins = tenants_.pinned_versions();
    for (auto it = retained_.begin(); it != retained_.end();) {
      const bool keep =
          it->first == version ||
          std::find(pins.begin(), pins.end(), it->first) != pins.end();
      it = keep ? std::next(it) : retained_.erase(it);
    }
  }
  // Future tenant adds must match the new current model's capability.
  tenants_.allow_int8(quantized);
  hot_.model_version.set(static_cast<std::int64_t>(version));
  return version;
}

std::uint64_t ReconServer::model_version() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_slot_->version;
}

LadderRung ReconServer::tenant_rung(const std::string& tenant) const {
  const std::string resolved = tenants_.resolve(tenant);
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenant_local_.find(resolved);
  return it == tenant_local_.end() ? LadderRung::kFull
                                   : it->second.ladder.rung();
}

std::shared_ptr<const ReconServer::ModelSlot> ReconServer::slot_for_locked(
    std::uint64_t pin_version) const {
  if (pin_version != 0) {
    const auto it = retained_.find(pin_version);
    if (it != retained_.end()) return it->second;
    // Pinned version already pruned (pin added after the deploy that
    // dropped it): documented fallback to current.
  }
  return current_slot_;
}

LadderRung ReconServer::observe_ladder_locked(const std::string& tenant,
                                              const TenantConfig& policy,
                                              std::uint64_t request_id) {
  TenantLocal& tl = tenant_local_[tenant];
  if (!tl.ladder_init) {
    // Config snapshot on first touch: tenant SLO override on top of the
    // server-wide ladder knobs. Later policy edits apply to new servers,
    // not a live ladder — determinism beats hot reconfiguration here.
    LadderConfig lc = config_.ladder;
    if (policy.slo_p95_s > 0.0) lc.slo_p95_s = policy.slo_p95_s;
    tl.ladder = TenantLadder(lc);
    tl.ladder_init = true;
  }
  double oldest_wait_s = 0.0;
  const auto qit = queues_.find(tenant);
  if (qit != queues_.end() && !qit->second.jobs.empty()) {
    oldest_wait_s =
        std::max(0.0, sched_now_s() - qit->second.jobs.front()->submit_t);
  }
  const LadderRung before = tl.ladder.rung();
  LadderRung rung = tl.ladder.observe(sched_now_s(), oldest_wait_s);
  if (rung != before) {
    hot_.ladder_rung.set(static_cast<std::int64_t>(rung));
    trace_.record(request_id, obs::SpanKind::kRungTransition, trace_.now_us(),
                  0.0, static_cast<std::uint32_t>(rung));
  }
  if (policy.forced_rung >= 0) {
    // Ops brownout switch: bypasses the state machine, does not seed it.
    rung = static_cast<LadderRung>(
        std::min(policy.forced_rung, kLadderRungs - 1));
  }
  return rung;
}

void ReconServer::deliver_response(Job& job, ServeResponse response) {
  if (job.callback) {
    // The callback contract forbids throwing; a violation must not escape a
    // worker thread (std::terminate), so it is contained here — but never
    // silently: the contract breach is counted.
    try {
      job.callback(std::move(response), nullptr);
    } catch (...) {
      hot_.callback_errors.add();
    }
  } else {
    job.promise.set_value(std::move(response));
  }
}

void ReconServer::deliver_error(Job& job, std::exception_ptr error) {
  if (job.callback) {
    try {
      ServeResponse resp;
      resp.request_id = job.request_id;
      resp.rung = static_cast<int>(job.rung);
      resp.model_version = job.slot ? job.slot->version : 0;
      job.callback(std::move(resp), error);
    } catch (...) {
      hot_.callback_errors.add();
    }
  } else {
    job.promise.set_exception(error);
  }
}

SubmitResult ReconServer::submit(ServeRequest request) {
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  SubmitResult out;
  out.response = job->promise.get_future();
  out.status = submit_job(job);
  out.accepted = out.status == SubmitStatus::kAccepted;
  out.request_id = job->request_id;
  return out;
}

SubmitStatus ReconServer::submit_async(ServeRequest request,
                                       ResponseCallback callback) {
  if (!callback) {
    throw std::invalid_argument("ReconServer: submit_async needs a callback");
  }
  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->callback = std::move(callback);
  return submit_job(job);
}

nn::Precision ReconServer::resolve_precision(
    const std::string& resolved_tenant, const ModelSlot& slot,
    TenantPrecision request_override) const {
  switch (tenants_.precision_of(resolved_tenant)) {
    case TenantPrecision::kFp32:
      return nn::Precision::kFp32;
    case TenantPrecision::kInt8:
      // Unreachable on an unquantized slot: the registry rejects kInt8
      // pins while int8 is unavailable, and deploy_model rejects an
      // unquantized swap while any such pin exists.
      return nn::Precision::kInt8;
    case TenantPrecision::kInherit:
      break;
  }
  // No tenant pin: the request's own ask (the wire precision field) is
  // honoured when satisfiable; an int8 ask on an unquantized slot degrades
  // to the slot default exactly like PrecisionPolicy::kAuto does.
  switch (request_override) {
    case TenantPrecision::kFp32:
      return nn::Precision::kFp32;
    case TenantPrecision::kInt8:
      if (slot.quantized) return nn::Precision::kInt8;
      break;
    case TenantPrecision::kInherit:
      break;
  }
  return slot.default_precision;
}

SubmitStatus ReconServer::submit_job(const std::shared_ptr<Job>& job) {
  job->request_id = trace_.mint_request_id();
  job->submit_us = trace_.now_us();
  job->submit_t = sched_now_s();
  hot_.submitted.add();
  job->tenant = tenants_.resolve(job->request.tenant);
  const TenantConfig policy = tenants_.config_of(job->tenant);

  // Ladder + model-slot resolution, one mu_ acquisition. The rung decides
  // the decode parameters and those parameters name the cache entry, so
  // both are resolved before the cache probe below.
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->slot = slot_for_locked(policy.pin_version);
    job->rung = observe_ladder_locked(job->tenant, policy, job->request_id);
  }
  const RungPlan plan = rung_plan(job->rung);
  if (plan.shed) {
    // Last rung: reject everything for this tenant (cache probes included)
    // until the pressure window says otherwise.
    hot_.shed_overloaded.add();
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    ++rejected_;
    ++shed_overloaded_;
    TenantLocal& tl = tenant_local_[job->tenant];
    ++tl.submitted;
    ++tl.shed_overloaded;
    return SubmitStatus::kOverloaded;
  }
  job->precision =
      resolve_precision(job->tenant, *job->slot, job->request.precision);
  if (plan.use_int8 && job->slot->quantized &&
      policy.precision != TenantPrecision::kFp32) {
    // Rung substitution. A tenant that explicitly pins fp32 keeps it (the
    // pin is a quality contract); it still loses deblocking and the
    // transformer at the higher rungs.
    job->precision = nn::Precision::kInt8;
  }
  job->deblock = plan.deblock;
  job->coarse = plan.coarse_fill;

  const bool caching = cache_.capacity_bytes() > 0;
  if (caching) {
    // Hashing + copying the payload into the key only pays off when the
    // cache can actually store something. The key's codec field names
    // every knob the output bytes depend on: precision (fp32 and int8
    // reconstructions of one blob are different images), model version
    // (different weights, different bytes) and the rung's decode options.
    // The coarse rung never touches the model, so its entries are shared
    // across precisions and versions by construction.
    std::string variant = job->request.codec;
    variant += '#';
    if (job->coarse) {
      variant += "coarse";
    } else {
      variant += nn::precision_name(job->precision);
      variant += "#v";
      variant += std::to_string(job->slot->version);
      if (!job->deblock) variant += "#nodb";
    }
    job->cache_key = make_cache_key(job->request.compressed, variant);
  }

  // Fast path: an identical request already reconstructed. Served before
  // admission — a hit costs no reconstruction capacity, which is the
  // resource the tenant limits exist to protect. Hits also record no
  // ladder latency sample: they say nothing about decode pressure.
  if (std::shared_ptr<const image::Image> hit =
          caching ? cache_.get(job->cache_key) : nullptr) {
    ServeResponse resp;
    resp.image = std::move(hit);
    resp.cache_hit = true;
    resp.request_id = job->request_id;
    resp.rung = static_cast<int>(job->rung);
    resp.model_version = job->slot->version;
    resp.timing.total_s = job->since_submit.elapsed_seconds();
    stages_.total.record(resp.timing.total_s);
    hot_.completed.add();
    hot_.cache_hits.add();
    trace_.record(job->request_id, obs::SpanKind::kCacheHit, job->submit_us,
                  resp.timing.total_s * 1e6);
    StageStats* tenant_total = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++submitted_;
      ++completed_;
      TenantLocal& tl = tenant_local_[job->tenant];
      ++tl.submitted;
      ++tl.completed;
      ++tl.cache_hits;
      tenant_total = &tl.total;
    }
    tenant_total->record(resp.timing.total_s);
    deliver_response(*job, std::move(resp));
    return SubmitStatus::kAccepted;
  }
  if (caching) hot_.cache_misses.add();

  // Tenant admission: rate + quota, before the queue. The registry lock is
  // never nested inside mu_ on this path; the WDRR weight rides along in
  // the same acquisition.
  int weight = 1;
  const Admission admission = tenants_.try_admit(job->tenant, &weight);
  if (admission != Admission::kAdmitted) {
    (admission == Admission::kRateLimited ? hot_.shed_rate_limited
                                          : hot_.shed_quota)
        .add();
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    ++rejected_;
    ++tenant_local_[job->tenant].submitted;
    return admission == Admission::kRateLimited ? SubmitStatus::kRateLimited
                                                : SubmitStatus::kQuotaExceeded;
  }

  bool shed = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    ++submitted_;
    TenantLocal& tl = tenant_local_[job->tenant];
    ++tl.submitted;
    TenantQueue& tq = queues_[job->tenant];
    if (static_cast<int>(tq.jobs.size()) >= config_.max_queue) {
      if (config_.backpressure == BackpressurePolicy::kReject || stopping_) {
        shed = true;
      } else {
        space_cv_.wait(lock, [this, &tq] {
          return static_cast<int>(tq.jobs.size()) < config_.max_queue ||
                 stopping_;
        });
        if (stopping_) shed = true;
      }
    }
    if (shed) {
      ++rejected_;
      ++tl.shed_queue_full;
    } else {
      tq.weight = weight;
      tq.jobs.push_back(job);
      ++queued_;
      ++outstanding_;
      if (!tq.active) {
        tq.active = true;
        rr_.push_back(job->tenant);
      }
      max_queue_depth_ = std::max(max_queue_depth_, queued_);
      hot_.queue_depth.set(queued_);
    }
  }
  if (shed) hot_.shed_queue_full.add();
  if (shed) {
    // Undo the admission entirely — slot AND token — or a persistently
    // full queue would drain the bucket with requests that did no work
    // and misreport later sheds as kRateLimited.
    tenants_.cancel_admission(job->tenant);
    return SubmitStatus::kQueueFull;
  }
  work_cv_.notify_one();
  return SubmitStatus::kAccepted;
}

void ReconServer::drain() {
  if (config_.workers == 0) {
    // Manual scheduling mode: the caller's thread IS the worker. The flush
    // condition guarantees step() only goes idle once nothing is queued,
    // decoding or parked in the batch pool.
    while (step()) {
    }
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return outstanding_ == 0; });
}

StageAction ReconServer::step_stage() {
  if (config_.workers != 0) {
    throw std::logic_error(
        "ReconServer: step() is only valid in manual scheduling mode "
        "(workers == 0)");
  }
  std::unique_lock<std::mutex> lock(mu_);
  return try_step_locked(lock, kAssembleFirst);
}

bool ReconServer::step() { return step_stage() != StageAction::kIdle; }

int ReconServer::shaped_batch_patches(nn::Precision precision) const {
  std::lock_guard<std::mutex> lock(mu_);
  return precision == nn::Precision::kInt8 ? current_slot_->shaped_int8
                                           : current_slot_->shaped_fp32;
}

bool ReconServer::flush_conditions_locked() const {
  // No more token deposits are imminent: nothing queued and nobody decoding
  // (or we are shutting down). Waiting longer could not grow any batch.
  return (queued_ == 0 && decoding_ == 0) || stopping_;
}

bool ReconServer::group_ready_locked(const PendingGroup& group) const {
  // Budgets are per slot: a group formed on a superseded version keeps the
  // batch shape that version's footprint was shaped to.
  const int budget = group.precision == nn::Precision::kInt8
                         ? group.slot->shaped_int8
                         : group.slot->shaped_fp32;
  if (group.patches >= budget) return true;
  if (flush_conditions_locked()) return true;
  // Age trigger: an under-full group launches once its oldest tokens have
  // waited max_batch_wait_s. Without this, a rare-mask request would starve
  // behind a dominant group for as long as the queue stays busy, and the
  // batch pool's token memory would grow with the backlog instead of being
  // bounded by the linger window. Ages run on the scheduler clock so the
  // deterministic harness can trip this trigger by advancing virtual time.
  if (config_.max_batch_wait_s <= 0.0) return true;
  return !group.spans.empty() &&
         sched_now_s() - group.spans.front().inflight->ready_t >
             config_.max_batch_wait_s;
}

bool ReconServer::batch_ready_locked() const {
  for (const auto& [key, group] : pending_) {
    if (group_ready_locked(group)) return true;
  }
  return false;
}

ReconServer::FormedBatch ReconServer::form_batch_locked() {
  // Among ready groups, prefer the fullest: it amortises the forward pass
  // best and is the one closest to overflowing.
  auto best = pending_.end();
  for (auto it = pending_.begin(); it != pending_.end(); ++it) {
    if (!group_ready_locked(it->second)) continue;
    if (best == pending_.end() || it->second.patches > best->second.patches) {
      best = it;
    }
  }
  PendingGroup& group = best->second;

  FormedBatch batch;
  batch.mask = group.mask;
  batch.precision = group.precision;
  batch.slot = group.slot;
  int budget = group.precision == nn::Precision::kInt8 ? group.slot->shaped_int8
                                                       : group.slot->shaped_fp32;
  while (budget > 0 && !group.spans.empty()) {
    PendingGroup::Span& span = group.spans.front();
    const int take = std::min(budget, span.count);
    BatchItem item;
    item.inflight = span.inflight;
    item.offset = span.offset;
    item.count = take;
    item.batch_wait_s = span.inflight->since_tokens_ready.elapsed_seconds();
    batch.items.push_back(std::move(item));
    batch.patches += take;
    budget -= take;
    span.offset += take;
    span.count -= take;
    group.patches -= take;
    if (span.count == 0) {
      group.spans.erase(group.spans.begin());
    }
  }
  if (group.spans.empty()) pending_.erase(best);
  return batch;
}

std::shared_ptr<ReconServer::Job> ReconServer::pop_next_locked() {
  // Weighted-deficit round robin over tenants with queued work: the tenant
  // at the ring head gets a quantum of `weight` pops before the ring
  // rotates, so over any saturated window tenant throughput converges to
  // the weight ratio — a flooding tenant can fill only its own queue and
  // its own share of dequeues.
  while (!rr_.empty()) {
    const std::string name = rr_.front();
    TenantQueue& tq = queues_[name];
    if (tq.jobs.empty()) {  // defensive: emptied queues leave the ring below
      tq.active = false;
      tq.deficit = 0;
      rr_.pop_front();
      continue;
    }
    if (tq.deficit <= 0) tq.deficit = tq.weight;  // fresh visit, fresh quantum
    std::shared_ptr<Job> job = std::move(tq.jobs.front());
    tq.jobs.pop_front();
    --queued_;
    --tq.deficit;
    if (tq.jobs.empty()) {
      tq.active = false;
      tq.deficit = 0;  // an idle tenant does not bank unused quantum
      rr_.pop_front();
    } else if (tq.deficit <= 0) {
      rr_.pop_front();
      rr_.push_back(name);
    }
    return job;
  }
  return nullptr;
}

StageAction ReconServer::try_step_locked(std::unique_lock<std::mutex>& lock,
                                         const StageAction* order) {
  for (int i = 0; i < 3; ++i) {
    switch (order[i]) {
      case StageAction::kAssemble: {
        if (assemble_ring_.empty()) break;
        std::shared_ptr<InFlight> inflight =
            std::move(assemble_ring_.front());
        assemble_ring_.pop_front();
        // Count at claim time, not completion: finish_request fulfills the
        // promise while unlocked, so a caller woken by the future must
        // already see this action in stats().
        ++stage_actions_[2];
        lock.unlock();
        util::Stopwatch sw;
        finish_request(inflight);
        const double busy = sw.elapsed_seconds();
        lock.lock();
        stage_busy_s_[2] += busy;
        // Ring space freed can unblock a stalled forward launcher.
        work_cv_.notify_all();
        return StageAction::kAssemble;
      }
      case StageAction::kForward: {
        if (!batch_ready_locked()) break;
        if (assemble_ring_.size() >= assemble_ring_capacity_) {
          // Backpressure: assembly lags by a full pipeline window. Fall
          // through to the next stage in the order (assemble is always
          // behind forward in an order that didn't lead with it), so the
          // would-be launcher drains the ring instead of growing it.
          ++ring_full_stalls_;
          break;
        }
        FormedBatch batch = form_batch_locked();
        ++stage_actions_[1];  // claim-time, as above
        lock.unlock();
        util::Stopwatch sw;
        run_forward(std::move(batch));
        const double busy = sw.elapsed_seconds();
        lock.lock();
        stage_busy_s_[1] += busy;
        return StageAction::kForward;
      }
      case StageAction::kDecode: {
        std::shared_ptr<Job> job = pop_next_locked();
        if (!job) break;
        ++decoding_;
        job->timing.queue_wait_s = job->since_submit.elapsed_seconds();
        hot_.queue_depth.set(queued_);
        trace_.record(job->request_id, obs::SpanKind::kQueueWait,
                      job->submit_us, job->timing.queue_wait_s * 1e6);
        space_cv_.notify_all();  // different tenants wait on different queues
        ++stage_actions_[0];  // claim-time, as above
        lock.unlock();
        util::Stopwatch sw;
        run_decode(job);
        const double busy = sw.elapsed_seconds();
        lock.lock();
        --decoding_;
        stage_busy_s_[0] += busy;
        // Last decoder going idle can make the flush condition true for
        // everyone; batches formed from the deposit also need announcing.
        work_cv_.notify_all();
        return StageAction::kDecode;
      }
      case StageAction::kIdle:
        break;
    }
  }
  return StageAction::kIdle;
}

void ReconServer::worker_loop(int worker_index) {
  const StageAction* order = worker_stage_order(worker_index);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (try_step_locked(lock, order) != StageAction::kIdle) continue;
    if (stopping_ && queued_ == 0 && pending_.empty() && decoding_ == 0 &&
        assemble_ring_.empty()) {
      return;
    }
    if (!pending_.empty() && config_.max_batch_wait_s > 0.0) {
      // Tokens are parked: sleep only until the soonest age trigger is due,
      // so an under-full batch launches on time even if no decode
      // completion notifies us first.
      double soonest = config_.max_batch_wait_s;
      const double now = sched_now_s();
      for (const auto& [key, group] : pending_) {
        if (group.spans.empty()) continue;
        const double remaining = config_.max_batch_wait_s -
                                 (now - group.spans.front().inflight->ready_t);
        soonest = std::min(soonest, remaining);
      }
      work_cv_.wait_for(lock,
                        std::chrono::duration<double>(std::max(soonest, 1e-4)));
    } else {
      work_cv_.wait(lock);
    }
  }
}

void ReconServer::run_decode(const std::shared_ptr<Job>& job) {
  try {
    if (config_.fault_injection) config_.fault_injection(StageAction::kDecode);
    codec::ImageCodec* codec = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = codecs_.find(job->request.codec);
      if (it == codecs_.end()) {
        throw std::runtime_error("ReconServer: unregistered codec '" +
                                 job->request.codec + "'");
      }
      codec = it->second;
    }
    // Geometry sanity against the deployed model's patchify. A client
    // encoded with a different grid produces a differently-sized mask side
    // channel; EraseMask::from_bytes accepts any buffer that is large
    // enough, so without an exact-size check the wrong-grid mask would be
    // silently reinterpreted and garbage pixels returned as success.
    const core::EaszCompressed& c = job->request.compressed;
    const int grid = patchify_.grid();
    const std::size_t expected_mask_bytes =
        (static_cast<std::size_t>(grid) * grid + 7) / 8;
    if (c.mask_bytes.size() != expected_mask_bytes) {
      throw std::runtime_error(
          "ReconServer: mask side channel is " +
          std::to_string(c.mask_bytes.size()) + " bytes, expected " +
          std::to_string(expected_mask_bytes) +
          " for the deployed grid — patchify mismatch?");
    }
    if (c.padded_width % patchify_.patch != 0 ||
        c.padded_height % patchify_.patch != 0) {
      throw std::runtime_error(
          "ReconServer: padded geometry not a multiple of the deployed "
          "patch size — patchify mismatch?");
    }
    core::EaszConfig cfg;
    cfg.patchify = patchify_;
    cfg.erased_per_row = c.erased_per_row;
    cfg.axis = c.axis;
    const core::ReconstructionModel& model = *job->slot->model;
    const core::EaszPipeline pipeline(cfg, *codec, &model);

    if (job->coarse) {
      // Coarse rung (DESIGN.md §10): nearest-neighbour fill needs no
      // transformer, so the whole request completes inside this decode
      // action — byte-identical to EaszPipeline::decode with
      // coarse_fill = true, by construction.
      util::Stopwatch sw;
      auto img = std::make_shared<image::Image>(
          pipeline.decode_neighbor_fill(job->request.compressed));
      job->timing.decode_s = sw.elapsed_seconds();
      trace_.record(job->request_id, obs::SpanKind::kDecode,
                    trace_.now_us() - job->timing.decode_s * 1e6,
                    job->timing.decode_s * 1e6);
      settle_success(job, std::move(img));
      return;
    }

    util::Stopwatch sw;
    auto inflight = std::make_shared<InFlight>();
    core::EaszPipeline::DecodeTokensTiming decode_timing;
    inflight->decoded =
        pipeline.decode_tokens(job->request.compressed, &decode_timing);
    job->timing.decode_s = sw.elapsed_seconds();
    job->timing.codec_decode_s = decode_timing.codec_decode_s;
    inflight->job = job;
    if (inflight->decoded.channels != model.config().channels) {
      // E.g. a grayscale upload through an RGB deployment: reject here with
      // a clean per-request error instead of a shape throw mid-batch.
      throw std::runtime_error(
          "ReconServer: request channel count " +
          std::to_string(inflight->decoded.channels) +
          " does not match the deployed model's " +
          std::to_string(model.config().channels));
    }

    const int patches = inflight->decoded.tokens.dim(0);
    inflight->result = tensor::Tensor({patches, inflight->decoded.tokens.dim(1),
                                       inflight->decoded.tokens.dim(2)});
    inflight->patches_remaining = patches;
    inflight->since_tokens_ready.reset();
    inflight->ready_t = sched_now_s();

    const std::string key = mask_group_key(inflight->decoded.recon_mask,
                                           inflight->decoded.tokens.dim(2),
                                           job->precision, job->slot->version);
    stages_.codec_decode.record(decode_timing.codec_decode_s);
    // Spans are recorded at completion: start = now - measured duration, on
    // the shared trace clock. codec decode is the leading sub-stage of
    // decode, so both spans share a start.
    const double decode_start_us =
        trace_.now_us() - job->timing.decode_s * 1e6;
    trace_.record(job->request_id, obs::SpanKind::kDecode, decode_start_us,
                  job->timing.decode_s * 1e6);
    trace_.record(job->request_id, obs::SpanKind::kCodecDecode,
                  decode_start_us, job->timing.codec_decode_s * 1e6);
    {
      std::lock_guard<std::mutex> lock(mu_);
      codec_pixels_ += decode_timing.codec_pixels;
      PendingGroup& group = pending_[key];
      if (group.spans.empty()) {
        group.mask = inflight->decoded.recon_mask;
        group.precision = job->precision;
        group.slot = job->slot;
      }
      group.spans.push_back(PendingGroup::Span{inflight, 0, patches});
      group.patches += patches;
    }
    work_cv_.notify_all();
  } catch (...) {
    fail_request(job, std::current_exception());
  }
}

void ReconServer::run_forward(FormedBatch batch) {
  const int tokens = patchify_.tokens();
  const int token_dim = batch.items.front().inflight->decoded.tokens.dim(2);
  const std::size_t per_patch =
      static_cast<std::size_t>(tokens) * token_dim;

  tensor::Tensor pooled({batch.patches, tokens, token_dim});
  std::size_t cursor = 0;
  for (const BatchItem& item : batch.items) {
    std::copy_n(item.inflight->decoded.tokens.data().begin() +
                    static_cast<std::size_t>(item.offset) * per_patch,
                static_cast<std::size_t>(item.count) * per_patch,
                pooled.data().begin() + cursor);
    cursor += static_cast<std::size_t>(item.count) * per_patch;
  }

  util::Stopwatch sw;
  tensor::Tensor recon;
  try {
    if (config_.fault_injection) config_.fault_injection(StageAction::kForward);
    // The batch's pinned slot, not the current one: a deploy_model racing
    // this forward must not tear the batch onto new weights.
    recon = batch.slot->model->reconstruct(pooled, batch.mask, batch.precision);
  } catch (...) {
    // A throwing forward pass must fail the requests it carried, not escape
    // the worker thread (which would std::terminate the whole server).
    const std::exception_ptr error = std::current_exception();
    for (const BatchItem& item : batch.items) {
      fail_request(item.inflight->job, error);
    }
    // Purge the failed requests' not-yet-batched spans so later forward
    // passes are not wasted on work whose promise is already dead.
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = pending_.begin(); it != pending_.end();) {
        PendingGroup& group = it->second;
        std::erase_if(group.spans, [&group](const PendingGroup::Span& span) {
          if (!span.inflight->job->settled) return false;
          group.patches -= span.count;
          return true;
        });
        it = group.spans.empty() ? pending_.erase(it) : std::next(it);
      }
    }
    return;
  }
  const double reconstruct_s = sw.elapsed_seconds();
  stages_.reconstruct.record(reconstruct_s);
  if (batch.precision == nn::Precision::kInt8) {
    stages_.reconstruct_int8.record(reconstruct_s);
  }
  hot_.batches.add();
  hot_.batched_patches.add(static_cast<std::uint64_t>(batch.patches));
  // Per-request view of the shared forward pass: every rider gets a
  // batch_wait span ending at launch and a reconstruct span (aux = how many
  // of the batch's patches were its own).
  const double recon_start_us = trace_.now_us() - reconstruct_s * 1e6;
  for (const BatchItem& item : batch.items) {
    const std::uint64_t rid = item.inflight->job->request_id;
    trace_.record(rid, obs::SpanKind::kBatchWait,
                  recon_start_us - item.batch_wait_s * 1e6,
                  item.batch_wait_s * 1e6);
    trace_.record(rid, obs::SpanKind::kReconstruct, recon_start_us,
                  reconstruct_s * 1e6, static_cast<std::uint32_t>(item.count));
  }

  cursor = 0;
  for (const BatchItem& item : batch.items) {
    std::copy_n(recon.data().begin() + cursor,
                static_cast<std::size_t>(item.count) * per_patch,
                item.inflight->result.data().begin() +
                    static_cast<std::size_t>(item.offset) * per_patch);
    cursor += static_cast<std::size_t>(item.count) * per_patch;
  }

  std::size_t ring_depth = 0;
  bool pushed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++batches_;
    if (batch.precision == nn::Precision::kInt8) ++batches_int8_;
    batched_patches_ += static_cast<std::uint64_t>(batch.patches);
    bool cross_request = false;
    for (std::size_t i = 1; i < batch.items.size(); ++i) {
      if (batch.items[i].inflight != batch.items[0].inflight) {
        cross_request = true;
        break;
      }
    }
    if (cross_request) ++cross_request_batches_;
    for (BatchItem& item : batch.items) {
      RequestTiming& t = item.inflight->job->timing;
      t.batch_wait_s = std::max(t.batch_wait_s, item.batch_wait_s);
      t.reconstruct_s += reconstruct_s;
      item.inflight->patches_remaining -= item.count;
      if (item.inflight->patches_remaining == 0) {
        // Hand off to the assemble stage instead of finishing inline: the
        // forward worker returns to ALU work while another worker (or the
        // next manual step) runs the memory-bound tokens->pixels pass.
        assemble_ring_.push_back(item.inflight);
        pushed = true;
      }
    }
    ring_depth = assemble_ring_.size();
  }
  if (pushed) {
    ring_depth_.record(static_cast<double>(ring_depth));
    work_cv_.notify_all();  // wake assemble-preferring workers
  }
}

void ReconServer::finish_request(const std::shared_ptr<InFlight>& inflight) {
  const std::shared_ptr<Job>& job = inflight->job;
  try {
    if (config_.fault_injection) {
      config_.fault_injection(StageAction::kAssemble);
    }
    util::Stopwatch sw;
    auto img = std::make_shared<image::Image>(core::EaszPipeline::assemble_decoded(
        inflight->decoded, inflight->result, patchify_, job->deblock));
    job->timing.assemble_s = sw.elapsed_seconds();
    settle_success(job, std::move(img));
  } catch (...) {
    fail_request(job, std::current_exception());
  }
}

void ReconServer::settle_success(const std::shared_ptr<Job>& job,
                                 std::shared_ptr<const image::Image> img) {
  job->timing.total_s = job->since_submit.elapsed_seconds();
  if (cache_.capacity_bytes() > 0) cache_.put(job->cache_key, img);

  ServeResponse resp;
  resp.image = std::move(img);
  resp.cache_hit = false;
  resp.request_id = job->request_id;
  resp.rung = static_cast<int>(job->rung);
  resp.model_version = job->slot->version;
  resp.timing = job->timing;
  StageStats* tenant_total = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job->settled) return;  // a failed sibling batch got there first
    job->settled = true;
    ++completed_;
    TenantLocal& tl = tenant_local_[job->tenant];
    ++tl.completed;
    tenant_total = &tl.total;
    // Ladder pressure sample: submit -> settle on the SCHED clock, so the
    // deterministic harness controls every input to the rung walk. Cache
    // hits never reach this path and never dilute the window.
    tl.ladder.record_latency(std::max(0.0, sched_now_s() - job->submit_t));
  }
  tenants_.release(job->tenant);
  hot_.completed.add();

  stages_.queue_wait.record(job->timing.queue_wait_s);
  stages_.decode.record(job->timing.decode_s);
  stages_.batch_wait.record(job->timing.batch_wait_s);
  stages_.assemble.record(job->timing.assemble_s);
  stages_.total.record(job->timing.total_s);
  tenant_total->record(job->timing.total_s);

  const double end_us = trace_.now_us();
  if (job->timing.assemble_s > 0.0) {
    trace_.record(job->request_id, obs::SpanKind::kAssemble,
                  end_us - job->timing.assemble_s * 1e6,
                  job->timing.assemble_s * 1e6);
  }
  trace_.record(job->request_id, obs::SpanKind::kTotal, job->submit_us,
                job->timing.total_s * 1e6);

  // Deliver BEFORE counting the request as no longer outstanding:
  // drain() promises that every accepted request "has completed", and
  // for the callback path completion includes the callback itself.
  try {
    deliver_response(*job, std::move(resp));
  } catch (...) {
    // Already settled; swallow so the countdown below still happens and
    // drain() cannot hang on a throwing promise/callback edge case.
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
  }
  idle_cv_.notify_all();
}

void ReconServer::fail_request(const std::shared_ptr<Job>& job,
                               std::exception_ptr error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A request split across batches can fail more than once (or fail in
    // one batch and "finish" in another); only the first settle counts.
    if (job->settled) return;
    job->settled = true;
    ++failed_;
    ++tenant_local_[job->tenant].failed;
  }
  // A failed request returns its inflight slot AND its rate token (the
  // tenant got no service for it), but stays counted as admitted — see
  // TenantRegistry::release_failed for the contract.
  tenants_.release_failed(job->tenant);
  hot_.failed.add();
  hot_.requests_failed.add();
  trace_.record(job->request_id, obs::SpanKind::kFailed, job->submit_us,
                trace_.now_us() - job->submit_us,
                static_cast<std::uint32_t>(job->rung));
  // As in settle_success: the error delivery is part of "completed or
  // failed", so it happens before drain()'s countdown.
  try {
    deliver_error(*job, error);
  } catch (...) {
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    --outstanding_;
  }
  idle_cv_.notify_all();
}

ServerStatsSnapshot ReconServer::stats() const {
  ServerStatsSnapshot s;
  struct LocalCopy {
    std::uint64_t submitted = 0, completed = 0, failed = 0, cache_hits = 0,
                  shed_queue_full = 0, shed_overloaded = 0;
    std::string rung = "full";
    double ladder_pressure = 0.0;
    std::uint64_t rung_transitions = 0;
    const StageStats* total = nullptr;
  };
  std::map<std::string, LocalCopy> locals;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.rejected = rejected_;
    s.shed_overloaded = shed_overloaded_;
    s.failed = failed_;
    s.model_version = current_slot_->version;
    s.model_versions_retained = static_cast<int>(retained_.size());
    s.deploys = deploys_;
    s.batches = batches_;
    s.batched_patches = batched_patches_;
    s.cross_request_batches = cross_request_batches_;
    s.batches_int8 = batches_int8_;
    s.precision = nn::precision_name(current_slot_->default_precision);
    s.kernel_threads = tensor::kern::threads();
    s.codec_pixels = codec_pixels_;
    s.queue_depth = queued_;
    s.max_queue_depth = max_queue_depth_;
    s.pipeline_depth = config_.pipeline_depth;
    s.assemble_ring_capacity = assemble_ring_capacity_;
    s.ring_full_stalls = ring_full_stalls_;
    s.stage_actions_decode = stage_actions_[0];
    s.stage_actions_forward = stage_actions_[1];
    s.stage_actions_assemble = stage_actions_[2];
    s.stage_busy_decode_s = stage_busy_s_[0];
    s.stage_busy_forward_s = stage_busy_s_[1];
    s.stage_busy_assemble_s = stage_busy_s_[2];
    s.shaped_batch_fp32 = current_slot_->shaped_fp32;
    s.shaped_batch_int8 = current_slot_->shaped_int8;
    s.llc_budget_bytes = llc_budget_;
    for (const auto& [name, tl] : tenant_local_) {
      LocalCopy lc;
      lc.submitted = tl.submitted;
      lc.completed = tl.completed;
      lc.failed = tl.failed;
      lc.cache_hits = tl.cache_hits;
      lc.shed_queue_full = tl.shed_queue_full;
      lc.shed_overloaded = tl.shed_overloaded;
      lc.rung = ladder_rung_name(tl.ladder.rung());
      lc.ladder_pressure = tl.ladder.last_pressure();
      lc.rung_transitions = tl.ladder.transitions();
      lc.total = &tl.total;
      locals[name] = std::move(lc);
    }
  }
  const CacheStats cs = cache_.stats();
  s.cache_hits = cs.hits;
  s.cache_misses = cs.misses;
  // Per-tenant: registry admission counters merged with serve-side locals.
  // tenant_local_ entries are never erased, so the pointers collected above
  // stay valid after mu_ is dropped (StageStats locks itself).
  for (const TenantAdmissionStats& a : tenants_.snapshot()) {
    TenantStatsSnapshot t;
    t.name = a.name;
    t.weight = a.weight;
    t.precision = a.precision == TenantPrecision::kInherit
                      ? "inherit"
                      : nn::precision_name(a.precision == TenantPrecision::kInt8
                                               ? nn::Precision::kInt8
                                               : nn::Precision::kFp32);
    t.admitted = a.admitted;
    t.shed_rate_limited = a.rate_limited;
    t.shed_quota = a.quota_rejected;
    t.inflight = a.inflight;
    const auto it = locals.find(a.name);
    if (it != locals.end()) {
      t.submitted = it->second.submitted;
      t.completed = it->second.completed;
      t.failed = it->second.failed;
      t.cache_hits = it->second.cache_hits;
      t.shed_queue_full = it->second.shed_queue_full;
      t.shed_overloaded = it->second.shed_overloaded;
      t.rung = it->second.rung;
      t.ladder_pressure = it->second.ladder_pressure;
      t.rung_transitions = it->second.rung_transitions;
      t.total = it->second.total->summarize();
    }
    s.tenants.push_back(std::move(t));
  }
  s.queue_wait = stages_.queue_wait.summarize();
  s.decode = stages_.decode.summarize();
  s.codec_decode = stages_.codec_decode.summarize();
  s.batch_wait = stages_.batch_wait.summarize();
  s.reconstruct = stages_.reconstruct.summarize();
  s.reconstruct_int8 = stages_.reconstruct_int8.summarize();
  s.assemble = stages_.assemble.summarize();
  s.total = stages_.total.summarize();
  s.ring_depth = ring_depth_.summarize();
  return s;
}

}  // namespace easz::serve
