#include "serve/router.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <unordered_map>

#include "serve/cache.hpp"
#include "serve/wire.hpp"

namespace easz::serve {

namespace {

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

// --------------------------------------------------------------- HashRing

HashRing::HashRing(std::size_t replica_count, int vnodes)
    : replica_count_(replica_count) {
  if (replica_count == 0) {
    throw std::invalid_argument("HashRing: need at least one replica");
  }
  if (vnodes < 1) throw std::invalid_argument("HashRing: vnodes must be >= 1");
  ring_.reserve(replica_count * static_cast<std::size_t>(vnodes));
  for (std::size_t r = 0; r < replica_count; ++r) {
    for (int v = 0; v < vnodes; ++v) {
      // Deterministic vnode identity: hash the "replica:vnode" label so the
      // placement depends on nothing but (replica_count, vnodes).
      const std::string label =
          "replica-" + std::to_string(r) + ":" + std::to_string(v);
      const std::uint64_t point = fnv1a64(
          reinterpret_cast<const std::uint8_t*>(label.data()), label.size());
      ring_.emplace_back(point, static_cast<std::uint32_t>(r));
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

std::size_t HashRing::lookup(std::uint64_t key) const {
  // First point clockwise from the key, wrapping past the top.
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), key,
      [](const std::pair<std::uint64_t, std::uint32_t>& entry,
         std::uint64_t k) { return entry.first < k; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

// ----------------------------------------------------------- ReplicaRouter

// One replica connection: a send thread drains `queue` into the socket, a
// receive thread polls responses and relays them to the waiting client
// connection. The two threads share one WireClient — safe because send only
// writes the fd and receive only reads it (distinct stream directions).
struct ReplicaRouter::Leg {
  std::size_t index = 0;
  std::string host;
  int port = 0;

  WireClient client;

  struct Pending {
    std::shared_ptr<TcpEndpoint::Sender> reply;
    std::uint64_t original_tag = 0;
    double start_s = 0.0;
  };

  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::pair<std::uint64_t, std::vector<std::uint8_t>>> queue;
  std::unordered_map<std::uint64_t, Pending> pending;
  bool down = false;      // replica unreachable: fail fast
  bool stopping = false;  // router shutdown

  std::thread send_thread;
  std::thread recv_thread;

  // Metrics (owned by the router's registry).
  obs::Counter* forwarded = nullptr;
  obs::Counter* responses = nullptr;
  obs::Counter* shed = nullptr;
  obs::Counter* failed = nullptr;
  obs::LatencyHistogram latency;
};

namespace {

// Answers one client with a router-generated failure (leg down / queue
// full / shutdown). Best effort: a dead client Sender just drops it.
void fail_to_client(const std::shared_ptr<TcpEndpoint::Sender>& reply,
                    std::uint64_t original_tag, const std::string& why,
                    obs::Counter& dropped) {
  wire::WireResponse resp = wire::make_failed_response(why, 0);
  resp.client_tag = original_tag;
  if (!reply->send(wire::encode_response(resp))) dropped.add();
}

}  // namespace

ReplicaRouter::ReplicaRouter(RouterConfig config)
    : config_(std::move(config)),
      ring_(config_.replicas.size(), config_.vnodes),
      parse_errors_(registry_.counter("router.parse_errors")),
      dropped_responses_(registry_.counter("router.dropped_responses")) {
  // Bring every leg up BEFORE opening the front door: a router that cannot
  // reach its fleet refuses to start rather than black-holing traffic.
  legs_.reserve(config_.replicas.size());
  for (std::size_t i = 0; i < config_.replicas.size(); ++i) {
    auto leg = std::make_unique<Leg>();
    leg->index = i;
    leg->host = config_.replicas[i].host;
    leg->port = config_.replicas[i].port;
    const std::string prefix = "router.replica" + std::to_string(i);
    leg->forwarded = &registry_.counter(prefix + ".forwarded");
    leg->responses = &registry_.counter(prefix + ".responses");
    leg->shed = &registry_.counter(prefix + ".shed");
    leg->failed = &registry_.counter(prefix + ".failed");
    leg->client.connect(leg->host, leg->port, config_.connect_timeout_s);
    legs_.push_back(std::move(leg));
  }

  for (auto& leg_ptr : legs_) {
    Leg* leg = leg_ptr.get();
    obs::Counter* dropped = &dropped_responses_;

    leg->send_thread = std::thread([leg, dropped] {
      while (true) {
        std::pair<std::uint64_t, std::vector<std::uint8_t>> item;
        {
          std::unique_lock<std::mutex> lock(leg->mu);
          leg->cv.wait(lock, [leg] {
            return leg->stopping || leg->down || !leg->queue.empty();
          });
          if (leg->stopping || leg->down) return;
          item = std::move(leg->queue.front());
          leg->queue.pop_front();
        }
        try {
          // Raw frame write: the body was re-encoded with the router tag by
          // on_frame, so send it verbatim rather than re-parsing.
          leg->client.send_frame(item.second);
        } catch (const std::exception&) {
          // Replica gone mid-send. Every queued frame has a pending entry
          // (on_frame registers it before enqueueing), so failing the
          // pending map covers the in-flight item and the queue both. The
          // recv thread sees `down` (or EOF) and exits on its own.
          std::unique_lock<std::mutex> lock(leg->mu);
          leg->down = true;
          auto pend = std::move(leg->pending);
          leg->pending.clear();
          leg->queue.clear();
          lock.unlock();
          leg->cv.notify_all();
          for (auto& entry : pend) {
            Leg::Pending& p = entry.second;
            leg->failed->add();
            fail_to_client(p.reply, p.original_tag,
                           "replica " + std::to_string(leg->index) +
                               " unavailable",
                           *dropped);
          }
          return;
        }
      }
    });

    leg->recv_thread = std::thread([leg, dropped] {
      while (true) {
        {
          std::lock_guard<std::mutex> lock(leg->mu);
          if (leg->stopping || leg->down) break;
        }
        std::optional<wire::WireResponse> resp;
        try {
          resp = leg->client.poll_response(0.2);
        } catch (const std::exception&) {
          // EOF or corrupt stream: the replica is gone.
          std::unique_lock<std::mutex> lock(leg->mu);
          leg->down = true;
          auto pend = std::move(leg->pending);
          leg->pending.clear();
          leg->queue.clear();
          lock.unlock();
          leg->cv.notify_all();
          for (auto& entry : pend) {
            Leg::Pending& p = entry.second;
            leg->failed->add();
            fail_to_client(p.reply, p.original_tag,
                           "replica " + std::to_string(leg->index) +
                               " unavailable",
                           *dropped);
          }
          break;
        }
        if (!resp) continue;

        Leg::Pending p;
        {
          std::lock_guard<std::mutex> lock(leg->mu);
          auto it = leg->pending.find(resp->client_tag);
          if (it == leg->pending.end()) {
            // Unknown tag: the replica answered something we already
            // failed (or garbage). Count and move on.
            dropped->add();
            continue;
          }
          p = std::move(it->second);
          leg->pending.erase(it);
        }
        leg->latency.record(steady_now_s() - p.start_s);
        leg->responses->add();
        const bool was_shed = resp->status == wire::ResponseStatus::kShed;
        if (was_shed) leg->shed->add();
        resp->client_tag = p.original_tag;
        // Propagate shed as backpressure on the CLIENT connection too: the
        // fleet is saying no, so stop reading this client until it hears it.
        if (!p.reply->send(wire::encode_response(*resp), was_shed)) {
          dropped->add();
        }
      }
    });
  }

  front_ = std::make_unique<TcpEndpoint>(
      config_.front,
      [this](std::vector<std::uint8_t> body,
             const std::shared_ptr<TcpEndpoint::Sender>& reply) {
        on_frame(std::move(body), reply);
      },
      registry_, "router.front");
}

ReplicaRouter::~ReplicaRouter() { stop(); }

int ReplicaRouter::port() const { return front_->port(); }

std::size_t ReplicaRouter::replica_for(std::uint64_t routing_key) const {
  return ring_.lookup(routing_key);
}

void ReplicaRouter::on_frame(
    std::vector<std::uint8_t> body,
    const std::shared_ptr<TcpEndpoint::Sender>& reply) {
  static std::atomic<std::uint64_t> next_tag{1};

  wire::WireRequest request;
  try {
    request = wire::parse_request(body);
  } catch (const wire::WireError& e) {
    parse_errors_.add();
    wire::WireResponse resp = wire::make_failed_response(e.what(), 0);
    if (!reply->send(wire::encode_response(resp))) dropped_responses_.add();
    return;
  }

  const std::uint64_t original_tag = request.client_tag;
  Leg& leg = *legs_[ring_.lookup(wire::routing_hash(request))];

  const std::uint64_t router_tag =
      next_tag.fetch_add(1, std::memory_order_relaxed);
  request.client_tag = router_tag;
  std::vector<std::uint8_t> frame = wire::encode_request(request);

  {
    std::lock_guard<std::mutex> lock(leg.mu);
    if (leg.down || leg.stopping ||
        leg.queue.size() >= config_.max_leg_queue) {
      leg.failed->add();
      fail_to_client(reply, original_tag,
                     leg.down || leg.stopping
                         ? "replica " + std::to_string(leg.index) +
                               " unavailable"
                         : "replica " + std::to_string(leg.index) +
                               " queue full",
                     dropped_responses_);
      return;
    }
    leg.pending.emplace(
        router_tag, Leg::Pending{reply, original_tag, steady_now_s()});
    leg.queue.emplace_back(router_tag, std::move(frame));
    leg.forwarded->add();
  }
  leg.cv.notify_one();
}

ReplicaStats ReplicaRouter::replica_stats(std::size_t index) const {
  const Leg& leg = *legs_.at(index);
  ReplicaStats stats;
  stats.forwarded = leg.forwarded->value();
  stats.responses = leg.responses->value();
  stats.shed = leg.shed->value();
  stats.failed = leg.failed->value();
  stats.latency = leg.latency.snapshot();
  return stats;
}

std::string ReplicaRouter::stats_json() const {
  std::ostringstream out;
  out << "{\"replicas\":[";
  for (std::size_t i = 0; i < legs_.size(); ++i) {
    const ReplicaStats s = replica_stats(i);
    if (i != 0) out << ",";
    out << "{\"index\":" << i << ",\"host\":\"" << legs_[i]->host
        << "\",\"port\":" << legs_[i]->port
        << ",\"forwarded\":" << s.forwarded
        << ",\"responses\":" << s.responses << ",\"shed\":" << s.shed
        << ",\"failed\":" << s.failed << ",\"p50_s\":"
        << s.latency.quantile(50.0) << ",\"p95_s\":"
        << s.latency.quantile(95.0) << "}";
  }
  out << "],\"parse_errors\":" << parse_errors_.value()
      << ",\"dropped_responses\":" << dropped_responses_.value();
  const obs::Registry::Snapshot snap = registry_.snapshot();
  out << ",\"front\":{\"accepted\":"
      << snap.counter("router.front.accepted")
      << ",\"closed\":" << snap.counter("router.front.closed")
      << ",\"rx_frames\":" << snap.counter("router.front.rx_frames")
      << ",\"tx_frames\":" << snap.counter("router.front.tx_frames") << "}}";
  return out.str();
}

void ReplicaRouter::stop() {
  // Front door first: no new requests can arrive once it is down.
  if (front_) front_->stop();
  for (auto& leg_ptr : legs_) {
    Leg& leg = *leg_ptr;
    std::unordered_map<std::uint64_t, Leg::Pending> pend;
    {
      std::lock_guard<std::mutex> lock(leg.mu);
      if (leg.stopping) continue;
      leg.stopping = true;
      pend = std::move(leg.pending);
      leg.pending.clear();
      leg.queue.clear();
    }
    leg.cv.notify_all();
    if (leg.send_thread.joinable()) leg.send_thread.join();
    if (leg.recv_thread.joinable()) leg.recv_thread.join();
    leg.client.close();
    for (auto& entry : pend) {
            Leg::Pending& p = entry.second;
      leg.failed->add();
      fail_to_client(p.reply, p.original_tag, "router shutting down",
                     dropped_responses_);
    }
  }
}

}  // namespace easz::serve
