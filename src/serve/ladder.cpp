#include "serve/ladder.hpp"

#include <algorithm>
#include <cmath>

namespace easz::serve {

namespace {

// Cap on buffered latency samples per window. Windows are short, so this is
// only a safety bound; overflow samples are dropped (deterministically — the
// first kMaxSamples of a window always win).
constexpr std::size_t kMaxSamples = 8192;

double p95(std::vector<double>& samples) {
  if (samples.empty()) return 0.0;
  // Nearest-rank p95 on the sorted window. nth_element is enough: only the
  // ranked element matters, and the partial order it produces is
  // deterministic for a fixed input sequence.
  const std::size_t rank =
      (samples.size() * 95 + 99) / 100;  // ceil(n * 0.95), 1-based
  const std::size_t idx = (rank == 0 ? 0 : rank - 1);
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(idx),
                   samples.end());
  return samples[idx];
}

}  // namespace

const char* ladder_rung_name(LadderRung r) {
  switch (r) {
    case LadderRung::kFull: return "full";
    case LadderRung::kInt8: return "int8";
    case LadderRung::kNoDeblock: return "no_deblock";
    case LadderRung::kCoarse: return "coarse";
    case LadderRung::kShed: return "shed";
  }
  return "?";
}

RungPlan rung_plan(LadderRung r) {
  RungPlan p;
  switch (r) {
    case LadderRung::kFull:
      break;
    case LadderRung::kInt8:
      p.use_int8 = true;
      break;
    case LadderRung::kNoDeblock:
      p.use_int8 = true;
      p.deblock = false;
      break;
    case LadderRung::kCoarse:
      p.use_int8 = true;  // moot: no forward pass runs
      p.deblock = false;
      p.coarse_fill = true;
      break;
    case LadderRung::kShed:
      p.shed = true;
      break;
  }
  return p;
}

void TenantLadder::record_latency(double seconds) {
  if (!enabled()) return;
  if (samples_.size() < kMaxSamples) samples_.push_back(seconds);
}

LadderRung TenantLadder::observe(double now, double oldest_wait_s) {
  if (!enabled()) return rung_;
  if (!window_open_) {
    window_open_ = true;
    window_start_ = now;
    return rung_;
  }
  if (now - window_start_ < config_.window_s) return rung_;

  // Window rotation: one pressure reading, at most one rung of movement.
  const double slo = config_.slo_p95_s;
  double pressure = std::max(0.0, oldest_wait_s) / slo;
  if (static_cast<int>(samples_.size()) >= config_.min_samples) {
    pressure = std::max(pressure, p95(samples_) / slo);
  }
  last_pressure_ = pressure;

  const int cur = static_cast<int>(rung_);
  const int max = static_cast<int>(config_.max_rung);
  int next = cur;
  if (pressure >= config_.climb_ratio && cur < max) {
    next = cur + 1;
  } else if (pressure <= config_.descend_ratio && cur > 0) {
    next = cur - 1;
  }
  if (next != cur) {
    rung_ = static_cast<LadderRung>(next);
    ++transitions_;
  }
  samples_.clear();
  window_start_ = now;
  return rung_;
}

}  // namespace easz::serve
