#include "serve/tenant.hpp"

#include <algorithm>
#include <stdexcept>

namespace easz::serve {

TenantRegistry::TenantRegistry(ClockFn clock)
    : clock_(std::move(clock)), t0_(std::chrono::steady_clock::now()) {
  State def;
  def.config.name = kDefaultTenant;
  tenants_.emplace(kDefaultTenant, std::move(def));
}

double TenantRegistry::now_s() const {
  if (clock_) return clock_();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
      .count();
}

double TenantRegistry::burst_of(const TenantConfig& config) {
  if (config.burst > 0.0) return config.burst;
  return std::max(config.rate_per_s, 1.0);
}

namespace {

// Tenant names are identifiers, not free text: they flow verbatim into
// JSON reports and CLI tables (neither escapes), so the registry rejects
// anything that could corrupt those sinks instead of escaping at each one.
bool valid_tenant_name(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-' || c == '.';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

void TenantRegistry::add(TenantConfig config) {
  if (!valid_tenant_name(config.name)) {
    throw std::invalid_argument(
        "TenantRegistry: tenant name must be 1-64 chars of [A-Za-z0-9_.-]");
  }
  if (config.weight < 1) {
    throw std::invalid_argument("TenantRegistry: tenant '" + config.name +
                                "' needs weight >= 1");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (config.precision == TenantPrecision::kInt8 && !int8_allowed_) {
    throw std::invalid_argument(
        "TenantRegistry: tenant '" + config.name +
        "' pins int8 but int8 serving is unavailable (the deployed model "
        "is not quantized)");
  }
  State& s = tenants_[config.name];
  // Replacing policy resets the bucket (it is sized by the new burst) but
  // keeps counters and inflight holds: the requests are still out there.
  s.config = std::move(config);
  s.bucket_primed = false;
}

void TenantRegistry::allow_int8(bool allowed) {
  std::lock_guard<std::mutex> lock(mu_);
  int8_allowed_ = allowed;
}

bool TenantRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.count(name) != 0;
}

std::string TenantRegistry::resolve(const std::string& name) const {
  if (name.empty()) return kDefaultTenant;
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.count(name) != 0 ? name : kDefaultTenant;
}

int TenantRegistry::weight(const std::string& resolved) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(resolved);
  return it == tenants_.end() ? 1 : it->second.config.weight;
}

TenantPrecision TenantRegistry::precision_of(
    const std::string& resolved) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(resolved);
  return it == tenants_.end() ? TenantPrecision::kInherit
                              : it->second.config.precision;
}

TenantConfig TenantRegistry::config_of(const std::string& resolved) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(resolved);
  if (it == tenants_.end()) it = tenants_.find(kDefaultTenant);
  return it->second.config;
}

bool TenantRegistry::has_int8_pin() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, s] : tenants_) {
    if (s.config.precision == TenantPrecision::kInt8) return true;
  }
  return false;
}

std::vector<std::uint64_t> TenantRegistry::pinned_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::uint64_t> out;
  for (const auto& [name, s] : tenants_) {
    if (s.config.pin_version != 0) out.push_back(s.config.pin_version);
  }
  return out;
}

Admission TenantRegistry::try_admit(const std::string& resolved,
                                    int* weight_out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(resolved);
  if (it == tenants_.end()) it = tenants_.find(kDefaultTenant);
  State& s = it->second;
  if (weight_out != nullptr) *weight_out = s.config.weight;

  const bool limited = s.config.rate_per_s > 0.0;
  if (limited) {
    const double now = now_s();
    const double burst = burst_of(s.config);
    if (!s.bucket_primed) {
      s.tokens = burst;  // a fresh tenant may burst immediately
      s.bucket_primed = true;
    } else {
      s.tokens = std::min(
          burst, s.tokens + (now - s.last_refill_s) * s.config.rate_per_s);
    }
    s.last_refill_s = now;
    if (s.tokens < 1.0) {
      ++s.rate_limited;
      return Admission::kRateLimited;
    }
  }
  if (s.config.max_inflight > 0 && s.inflight >= s.config.max_inflight) {
    ++s.quota_rejected;
    return Admission::kQuotaExceeded;
  }
  if (limited) s.tokens -= 1.0;
  ++s.inflight;
  ++s.admitted;
  return Admission::kAdmitted;
}

void TenantRegistry::release(const std::string& resolved) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(resolved);
  if (it == tenants_.end()) it = tenants_.find(kDefaultTenant);
  if (it->second.inflight > 0) --it->second.inflight;
}

void TenantRegistry::cancel_admission(const std::string& resolved) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(resolved);
  if (it == tenants_.end()) it = tenants_.find(kDefaultTenant);
  State& s = it->second;
  if (s.inflight > 0) --s.inflight;
  if (s.admitted > 0) --s.admitted;  // the request never ran
  if (s.config.rate_per_s > 0.0 && s.bucket_primed) {
    s.tokens = std::min(burst_of(s.config), s.tokens + 1.0);
  }
}

void TenantRegistry::release_failed(const std::string& resolved) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(resolved);
  if (it == tenants_.end()) it = tenants_.find(kDefaultTenant);
  State& s = it->second;
  if (s.inflight > 0) --s.inflight;
  // Token refund mirrors cancel_admission; `admitted` stays — the request
  // ran (see release_failed contract in the header).
  if (s.config.rate_per_s > 0.0 && s.bucket_primed) {
    s.tokens = std::min(burst_of(s.config), s.tokens + 1.0);
  }
}

std::vector<TenantAdmissionStats> TenantRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TenantAdmissionStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, s] : tenants_) {
    TenantAdmissionStats t;
    t.name = name;
    t.weight = s.config.weight;
    t.precision = s.config.precision;
    t.admitted = s.admitted;
    t.rate_limited = s.rate_limited;
    t.quota_rejected = s.quota_rejected;
    t.inflight = s.inflight;
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace easz::serve
