#include "serve/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "obs/registry.hpp"

namespace easz::serve {

void StageStats::record(double seconds) {
  hist_.record(seconds);
  if (obs::exact_percentiles() && obs::enabled()) {
    std::lock_guard<std::mutex> lock(exact_mu_);
    if (exact_.size() < kExactSampleCap) exact_.push_back(seconds);
  }
}

double percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  p = std::min(100.0, std::max(0.0, p));
  // Nearest-rank: smallest sample with at least p% of the mass at or below.
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples.size())));
  return samples[rank == 0 ? 0 : rank - 1];
}

StageSummary StageStats::summarize() const {
  if (obs::exact_percentiles()) {
    std::vector<double> samples;
    {
      std::lock_guard<std::mutex> lock(exact_mu_);
      samples = exact_;
    }
    if (!samples.empty()) {
      StageSummary s;
      s.count = samples.size();
      double sum = 0.0;
      for (const double v : samples) {
        sum += v;
        s.max_s = std::max(s.max_s, v);
      }
      s.mean_s = sum / static_cast<double>(samples.size());
      s.p50_s = percentile(samples, 50.0);
      s.p95_s = percentile(samples, 95.0);
      s.p99_s = percentile(samples, 99.0);
      return s;
    }
  }
  const obs::HistogramSnapshot h = hist_.snapshot();
  StageSummary s;
  s.count = h.count;
  s.mean_s = h.mean();
  s.max_s = h.max_s;
  s.p50_s = h.quantile(50.0);
  s.p95_s = h.quantile(95.0);
  s.p99_s = h.quantile(99.0);
  return s;
}

namespace {

void append_stage_text(std::string& out, const char* name,
                       const StageSummary& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "  %-12s n=%-6llu mean %8.2f ms  p50 %8.2f  p95 %8.2f  "
                "p99 %8.2f  max %8.2f\n",
                name, static_cast<unsigned long long>(s.count), s.mean_s * 1e3,
                s.p50_s * 1e3, s.p95_s * 1e3, s.p99_s * 1e3, s.max_s * 1e3);
  out += buf;
}

void append_stage_json(std::string& out, const char* name,
                       const StageSummary& s, bool trailing_comma) {
  char buf[240];
  std::snprintf(buf, sizeof(buf),
                "\"%s\":{\"count\":%llu,\"mean_ms\":%.4f,\"p50_ms\":%.4f,"
                "\"p95_ms\":%.4f,\"p99_ms\":%.4f,\"max_ms\":%.4f}%s",
                name, static_cast<unsigned long long>(s.count), s.mean_s * 1e3,
                s.p50_s * 1e3, s.p95_s * 1e3, s.p99_s * 1e3, s.max_s * 1e3,
                trailing_comma ? "," : "");
  out += buf;
}

void append_tenant_text(std::string& out, const TenantStatsSnapshot& t) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "  %-12s w%-2d %-7s rung %-10s submitted %-6llu done %-6llu "
                "shed %llu (queue %llu, rate %llu, quota %llu, overload %llu)"
                "  p50 %7.2f ms  p95 %7.2f ms\n",
                t.name.c_str(), t.weight, t.precision.c_str(), t.rung.c_str(),
                static_cast<unsigned long long>(t.submitted),
                static_cast<unsigned long long>(t.completed),
                static_cast<unsigned long long>(t.rejected()),
                static_cast<unsigned long long>(t.shed_queue_full),
                static_cast<unsigned long long>(t.shed_rate_limited),
                static_cast<unsigned long long>(t.shed_quota),
                static_cast<unsigned long long>(t.shed_overloaded),
                t.total.p50_s * 1e3, t.total.p95_s * 1e3);
  out += buf;
}

void append_tenant_json(std::string& out, const TenantStatsSnapshot& t,
                        bool trailing_comma) {
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "{\"name\":\"%s\",\"weight\":%d,\"precision\":\"%s\","
      "\"submitted\":%llu,\"admitted\":%llu,"
      "\"completed\":%llu,\"failed\":%llu,\"cache_hits\":%llu,"
      "\"rejected\":%llu,\"shed_queue_full\":%llu,"
      "\"shed_rate_limited\":%llu,\"shed_quota\":%llu,"
      "\"shed_overloaded\":%llu,\"inflight\":%d,"
      "\"rung\":\"%s\",\"ladder_pressure\":%.4f,\"rung_transitions\":%llu,"
      "\"p50_ms\":%.4f,\"p95_ms\":%.4f,\"p99_ms\":%.4f}%s",
      t.name.c_str(), t.weight, t.precision.c_str(),
      static_cast<unsigned long long>(t.submitted),
      static_cast<unsigned long long>(t.admitted),
      static_cast<unsigned long long>(t.completed),
      static_cast<unsigned long long>(t.failed),
      static_cast<unsigned long long>(t.cache_hits),
      static_cast<unsigned long long>(t.rejected()),
      static_cast<unsigned long long>(t.shed_queue_full),
      static_cast<unsigned long long>(t.shed_rate_limited),
      static_cast<unsigned long long>(t.shed_quota),
      static_cast<unsigned long long>(t.shed_overloaded), t.inflight,
      t.rung.c_str(), t.ladder_pressure,
      static_cast<unsigned long long>(t.rung_transitions),
      t.total.p50_s * 1e3, t.total.p95_s * 1e3, t.total.p99_s * 1e3,
      trailing_comma ? "," : "");
  out += buf;
}

}  // namespace

std::string ServerStatsSnapshot::to_string() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "requests: submitted %llu, completed %llu, rejected %llu "
                "(%llu overload-shed), failed %llu\n",
                static_cast<unsigned long long>(submitted),
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(shed_overloaded),
                static_cast<unsigned long long>(failed));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "model: version %llu (%d retained, %llu hot swaps)\n",
                static_cast<unsigned long long>(model_version),
                model_versions_retained,
                static_cast<unsigned long long>(deploys));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "cache: %llu hits / %llu misses (%.1f%% hit rate)\n",
                static_cast<unsigned long long>(cache_hits),
                static_cast<unsigned long long>(cache_misses),
                cache_hits + cache_misses == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(cache_hits) /
                          static_cast<double>(cache_hits + cache_misses));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "batches: %llu forward passes (%llu int8), %.2f patches/batch "
                "mean, %llu cross-request, %d kernel threads, precision %s\n",
                static_cast<unsigned long long>(batches),
                static_cast<unsigned long long>(batches_int8),
                mean_batch_size(),
                static_cast<unsigned long long>(cross_request_batches),
                kernel_threads, precision.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "queue: depth %d now, %d peak\n", queue_depth,
                max_queue_depth);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "pipeline: depth %d (ring cap %llu), actions "
                "%llu decode / %llu forward / %llu assemble, "
                "%llu ring-full stalls, ring depth p50 %.1f p95 %.1f\n",
                pipeline_depth,
                static_cast<unsigned long long>(assemble_ring_capacity),
                static_cast<unsigned long long>(stage_actions_decode),
                static_cast<unsigned long long>(stage_actions_forward),
                static_cast<unsigned long long>(stage_actions_assemble),
                static_cast<unsigned long long>(ring_full_stalls),
                ring_depth.p50_s, ring_depth.p95_s);
  out += buf;
  if (llc_budget_bytes > 0) {
    std::snprintf(buf, sizeof(buf),
                  "llc shaping: budget %.1f MB -> batch %d fp32 / %d int8\n",
                  static_cast<double>(llc_budget_bytes) / (1 << 20),
                  shaped_batch_fp32, shaped_batch_int8);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "codec decode: %.2f MP/s (%llu pixels)\n",
                codec_decode_mpps(),
                static_cast<unsigned long long>(codec_pixels));
  out += buf;
  if (!tenants.empty()) {
    out += "tenants:\n";
    for (const TenantStatsSnapshot& t : tenants) append_tenant_text(out, t);
  }
  out += "stage latencies:\n";
  append_stage_text(out, "queue_wait", queue_wait);
  append_stage_text(out, "decode", decode);
  append_stage_text(out, "codec_decode", codec_decode);
  append_stage_text(out, "batch_wait", batch_wait);
  append_stage_text(out, "reconstruct", reconstruct);
  if (reconstruct_int8.count > 0) {
    append_stage_text(out, "recon_int8", reconstruct_int8);
  }
  append_stage_text(out, "assemble", assemble);
  append_stage_text(out, "total", total);
  return out;
}

std::string ServerStatsSnapshot::to_json() const {
  std::string out = "{";
  char buf[768];
  std::snprintf(
      buf, sizeof(buf),
      "\"submitted\":%llu,\"completed\":%llu,\"rejected\":%llu,"
      "\"shed_overloaded\":%llu,"
      "\"failed\":%llu,\"cache_hits\":%llu,\"cache_misses\":%llu,"
      "\"model_version\":%llu,\"model_versions_retained\":%d,"
      "\"deploys\":%llu,"
      "\"batches\":%llu,\"batched_patches\":%llu,"
      "\"cross_request_batches\":%llu,\"batches_int8\":%llu,"
      "\"mean_batch_size\":%.4f,"
      "\"precision\":\"%s\",\"kernel_threads\":%d,"
      "\"codec_pixels\":%llu,\"codec_decode_mpps\":%.4f,"
      "\"queue_depth\":%d,\"max_queue_depth\":%d,",
      static_cast<unsigned long long>(submitted),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(shed_overloaded),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses),
      static_cast<unsigned long long>(model_version), model_versions_retained,
      static_cast<unsigned long long>(deploys),
      static_cast<unsigned long long>(batches),
      static_cast<unsigned long long>(batched_patches),
      static_cast<unsigned long long>(cross_request_batches),
      static_cast<unsigned long long>(batches_int8), mean_batch_size(),
      precision.c_str(), kernel_threads,
      static_cast<unsigned long long>(codec_pixels),
      codec_decode_mpps(), queue_depth, max_queue_depth);
  out += buf;
  std::snprintf(
      buf, sizeof(buf),
      "\"pipeline\":{\"depth\":%d,\"ring_capacity\":%llu,"
      "\"ring_full_stalls\":%llu,"
      "\"actions\":{\"decode\":%llu,\"forward\":%llu,\"assemble\":%llu},"
      "\"busy_s\":{\"decode\":%.6f,\"forward\":%.6f,\"assemble\":%.6f},"
      "\"ring_depth\":{\"count\":%llu,\"p50\":%.2f,\"p95\":%.2f,"
      "\"max\":%.2f}},"
      "\"llc_shaping\":{\"budget_bytes\":%llu,\"batch_fp32\":%d,"
      "\"batch_int8\":%d},",
      pipeline_depth, static_cast<unsigned long long>(assemble_ring_capacity),
      static_cast<unsigned long long>(ring_full_stalls),
      static_cast<unsigned long long>(stage_actions_decode),
      static_cast<unsigned long long>(stage_actions_forward),
      static_cast<unsigned long long>(stage_actions_assemble),
      stage_busy_decode_s, stage_busy_forward_s, stage_busy_assemble_s,
      static_cast<unsigned long long>(ring_depth.count), ring_depth.p50_s,
      ring_depth.p95_s, ring_depth.max_s,
      static_cast<unsigned long long>(llc_budget_bytes), shaped_batch_fp32,
      shaped_batch_int8);
  out += buf;
  out += "\"tenants\":[";
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    append_tenant_json(out, tenants[i], i + 1 < tenants.size());
  }
  out += "],";
  append_stage_json(out, "queue_wait", queue_wait, true);
  append_stage_json(out, "decode", decode, true);
  append_stage_json(out, "codec_decode", codec_decode, true);
  append_stage_json(out, "batch_wait", batch_wait, true);
  append_stage_json(out, "reconstruct", reconstruct, true);
  append_stage_json(out, "reconstruct_int8", reconstruct_int8, true);
  append_stage_json(out, "assemble", assemble, true);
  append_stage_json(out, "total", total, false);
  out += "}";
  return out;
}

}  // namespace easz::serve
