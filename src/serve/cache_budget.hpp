// LLC-conscious batch shaping (DESIGN.md §9.2).
//
// The serve forward's throughput is governed by what stays last-level-cache
// resident (5GC²ache, PAPERS.md): once weights + packed int8 tiles +
// activations for a pooled batch outgrow the LLC, every GEMM panel streams
// from DRAM and per-patch cost roughly doubles. CacheBudget is the analytic
// working-set model the server consults at construction to pick the largest
// patch-batch whose forward stays cache-resident — per precision, because an
// int8 deployment parks 4x fewer weight bytes and therefore affords a larger
// batch inside the same cache.
//
// The model is deliberately coarse (no associativity, no sharing with other
// processes): it only has to rank batch sizes monotonically and land the
// knee within a factor of ~2, which the per-stage llc_miss counters in
// bench_serve validate empirically. All arithmetic is integer/deterministic:
// the same footprint and LLC size always shape the same batch, which the
// deterministic harness asserts.
#pragma once

#include <cstddef>
#include <string>

#include "core/recon_model.hpp"

namespace easz::serve {

/// Cache-relevant byte footprint of one deployed reconstruction model,
/// split into the batch-independent resident set (weights) and the
/// per-patch transient set (activations). Derived analytically from the
/// model config via CacheBudget::footprint_of, or hand-built in tests.
struct ModelFootprint {
  /// fp32 parameter bytes the forward touches every pass (all Linears,
  /// layernorm affines, positional embedding).
  std::size_t weight_bytes_fp32 = 0;
  /// int8 path: packed s8 B tiles + per-channel dequant scale / column-sum
  /// tables for every Linear, plus the fp32 non-Linear remainder.
  std::size_t weight_bytes_int8 = 0;
  /// Peak simultaneously-live activation bytes per pooled patch (residual
  /// stream, qkv, attention scores, ffn hidden, token in/out copies).
  std::size_t act_bytes_per_patch_fp32 = 0;
  /// int8 adds the u8-quantized A copies on top of the fp32 activations.
  std::size_t act_bytes_per_patch_int8 = 0;
  /// Batch-independent extras sharing the cache with the forward: rANS
  /// slot→sym + freq tables (~20KB), slot-table walk state, code.
  std::size_t fixed_overhead_bytes = 0;
};

class CacheBudget {
 public:
  /// Used when the LLC size is neither configured nor detectable — a
  /// conservative mid-range desktop/server L3.
  static constexpr std::size_t kDefaultLlcBytes = 8ULL << 20;

  /// Fraction of the LLC the forward may claim. The remainder absorbs the
  /// decode stage's stream buffers, the result cache's hot entries and
  /// whatever else the machine is doing — shaping to 100% would thrash on
  /// the first interleaved decode.
  static constexpr int kLlcUtilizationPct = 75;

  /// llc_bytes == 0 falls back to kDefaultLlcBytes (detection is the
  /// caller's job via detect_llc_bytes, so tests stay deterministic).
  CacheBudget(ModelFootprint footprint, std::size_t llc_bytes);

  /// Analytic footprint of a model config (exact parameter count; coarse
  /// but monotone activation estimate — see DESIGN.md §9.2 for the terms).
  [[nodiscard]] static ModelFootprint footprint_of(
      const core::ReconModelConfig& config);

  /// Shared last-level cache size of cpu0 via sysfs (Unified caches of
  /// level >= 3 only), _SC_LEVEL3_CACHE_SIZE fallback. Level matters: L2
  /// is also typed "Unified" in sysfs, so a host exposing only per-core
  /// L2 (common in VMs and containers) would otherwise report a tiny
  /// private cache as the shared LLC and shape batches far too small.
  /// Such hosts return 0 and callers substitute kDefaultLlcBytes — a
  /// documented conservative default beats a confidently wrong L2 size.
  [[nodiscard]] static std::size_t detect_llc_bytes();

  /// Testable core of detect_llc_bytes: walks `cache_dir`/index{0..7}
  /// expecting sysfs-layout `type` / `level` / `size` files. Exposed so
  /// unit tests can run the exact production parser against captured
  /// sysfs fixtures instead of whatever host CI lands on.
  [[nodiscard]] static std::size_t detect_llc_bytes_in(
      const std::string& cache_dir);

  /// Bytes the forward of `patches` pooled patches keeps live at once.
  [[nodiscard]] std::size_t working_set_bytes(int patches,
                                              nn::Precision precision) const;

  /// Largest batch in [1, requested_max] whose working set fits the
  /// budget. Never returns less than 1: when the weights alone overflow
  /// the LLC there is no cache-resident batch size, and patch-at-a-time
  /// forwards would only add per-pass overhead on top of the same misses.
  [[nodiscard]] int shape_batch(int requested_max,
                                nn::Precision precision) const;

  [[nodiscard]] std::size_t llc_bytes() const { return llc_bytes_; }
  /// llc_bytes scaled by kLlcUtilizationPct — what shape_batch fits into.
  [[nodiscard]] std::size_t budget_bytes() const;
  [[nodiscard]] const ModelFootprint& footprint() const { return footprint_; }

 private:
  ModelFootprint footprint_;
  std::size_t llc_bytes_ = 0;
};

}  // namespace easz::serve
