// Serving telemetry: per-stage latency distributions and runtime counters.
//
// Each pipeline stage (queue wait, codec decode, batch wait, transformer
// reconstruction, assembly, end-to-end) records wall-clock samples into a
// StageStats; snapshots expose p50/p95/p99 so the load generator and
// bench_serve can report tail latency, which is what a shared reconstruction
// server is actually judged on.
//
// Recording rides the observability substrate (src/obs): a wait-free O(1)
// log-bucketed histogram with fixed memory, so a worker never takes a lock
// or grows a vector on the hot path no matter how long the server runs.
// Percentiles carry the histogram's documented relative error bound
// (obs::kMaxQuantileRelError); count/mean/max stay exact. Golden tests that
// assert exact percentiles opt into the bounded exact-sample reservoir via
// EASZ_OBS_EXACT=1 or obs::set_exact_percentiles(true).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace easz::serve {

/// Latency distribution summary of one pipeline stage.
struct StageSummary {
  std::uint64_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// Thread-safe sample sink for one stage. record() is wait-free O(1) (one
/// striped histogram update); memory is fixed at construction. In exact
/// mode (obs::exact_percentiles()) samples are ALSO kept verbatim — capped
/// at kExactSampleCap — and summarize() computes exact nearest-rank
/// percentiles from them, which is what golden latency tests assert.
class StageStats {
 public:
  /// Exact-mode reservoir bound: plenty for any test run, and a hard
  /// ceiling so even exact mode cannot grow without limit in production.
  static constexpr std::size_t kExactSampleCap = 1 << 16;

  StageStats() = default;
  StageStats(const StageStats&) = delete;
  StageStats& operator=(const StageStats&) = delete;

  void record(double seconds);
  [[nodiscard]] StageSummary summarize() const;

  /// Raw histogram view (mergeable across stages/servers; see
  /// obs::HistogramSnapshot::merge).
  [[nodiscard]] obs::HistogramSnapshot histogram() const {
    return hist_.snapshot();
  }

 private:
  obs::LatencyHistogram hist_;
  // Exact-mode reservoir only; untouched (no lock taken) unless
  // obs::exact_percentiles() is on.
  mutable std::mutex exact_mu_;
  std::vector<double> exact_;
};

/// Nearest-rank percentile of an UNSORTED sample set (p in [0, 100]).
/// Exposed for tests; copies and sorts internally.
double percentile(std::vector<double> samples, double p);

/// Everything the server knows about one tenant at snapshot time:
/// admission-side counters from the TenantRegistry merged with the serve
/// path's completion counters and end-to-end latency distribution.
struct TenantStatsSnapshot {
  std::string name;
  int weight = 1;
  /// "inherit" (rides the server default), "fp32" or "int8".
  std::string precision = "inherit";
  std::uint64_t submitted = 0;  ///< includes shed and cache-hit requests
  std::uint64_t admitted = 0;   ///< passed rate + quota admission
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t shed_queue_full = 0;     ///< kReject backpressure drops
  std::uint64_t shed_rate_limited = 0;   ///< token bucket empty at submit
  std::uint64_t shed_quota = 0;          ///< max_inflight reached at submit
  std::uint64_t shed_overloaded = 0;     ///< ladder shed-rung rejections
  int inflight = 0;                      ///< at snapshot time
  StageSummary total;                    ///< per-tenant submit -> response

  // Degradation-ladder state (DESIGN.md §10).
  std::string rung = "full";             ///< current rung name
  double ladder_pressure = 0.0;          ///< at the last window rotation
  std::uint64_t rung_transitions = 0;    ///< walks since server start

  /// All submits shed before reaching a worker, for any reason.
  [[nodiscard]] std::uint64_t rejected() const {
    return shed_queue_full + shed_rate_limited + shed_quota + shed_overloaded;
  }
};

/// One snapshot of everything the server counts. Plain data, safe to copy
/// around after the server produced it.
struct ServerStatsSnapshot {
  // Request accounting.
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;   ///< total shed: queue-full + rate + quota
                                ///< + ladder overload
  std::uint64_t shed_overloaded = 0;  ///< of `rejected`: ladder shed rung
  std::uint64_t failed = 0;     ///< decode/forward/assemble errors
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  // Versioned hot reload (DESIGN.md §10).
  std::uint64_t model_version = 0;    ///< version serving non-pinned submits
  int model_versions_retained = 0;    ///< current + tenant-pinned versions
  std::uint64_t deploys = 0;          ///< hot swaps since construction

  // Batching effectiveness.
  std::uint64_t batches = 0;          ///< transformer forward passes
  std::uint64_t batched_patches = 0;  ///< patches across all batches
  std::uint64_t cross_request_batches = 0;  ///< batches mixing >= 2 requests
  std::uint64_t batches_int8 = 0;     ///< of `batches`, run at int8

  /// Server-default reconstruct precision ("fp32" or "int8"); per-tenant
  /// overrides appear in the tenant rows.
  std::string precision = "fp32";

  /// tensor::kern pool width the per-batch forward (the `reconstruct`
  /// stage below) ran on at snapshot time.
  int kernel_threads = 0;

  /// Pixels produced by the classical codec-decode sub-stage (inside
  /// `decode` below); with the codec_decode stage's total time this yields
  /// the per-stage throughput figure.
  std::uint64_t codec_pixels = 0;

  // Queue pressure (summed over per-tenant queues).
  int max_queue_depth = 0;
  int queue_depth = 0;  ///< at snapshot time

  // Staged pipeline health (DESIGN.md §9). Stage occupancy of stage S is
  // stage_busy_S_s / (workers x wall) — the bench computes it since only
  // the bench knows the wall window.
  int pipeline_depth = 1;
  std::size_t assemble_ring_capacity = 0;  ///< in requests
  std::uint64_t ring_full_stalls = 0;  ///< forwards skipped on a full ring
  std::uint64_t stage_actions_decode = 0;
  std::uint64_t stage_actions_forward = 0;
  std::uint64_t stage_actions_assemble = 0;
  double stage_busy_decode_s = 0.0;
  double stage_busy_forward_s = 0.0;
  double stage_busy_assemble_s = 0.0;
  /// Assemble-ring depth sampled after every forward push (requests).
  StageSummary ring_depth;

  // LLC-conscious batch shaping (serve/cache_budget.hpp). When shaping is
  // off both shaped sizes equal max_batch_patches and llc_budget_bytes
  // is 0.
  int shaped_batch_fp32 = 0;
  int shaped_batch_int8 = 0;
  std::size_t llc_budget_bytes = 0;

  /// Per-tenant breakdown, name-ordered. Always contains at least the
  /// default tenant once it has seen traffic.
  std::vector<TenantStatsSnapshot> tenants;

  // Stage latencies.
  StageSummary queue_wait;
  StageSummary decode;        ///< codec decode + unsqueeze + tokenise
  StageSummary codec_decode;  ///< inner ImageCodec::decode only
  StageSummary batch_wait;    ///< tokens ready -> batch launched
  StageSummary reconstruct;   ///< transformer forward (per batch, both
                              ///< precisions)
  StageSummary reconstruct_int8;  ///< the int8 subset of `reconstruct`
  StageSummary assemble;      ///< tokens -> pixels -> deblock -> crop
  StageSummary total;         ///< submit -> response ready

  [[nodiscard]] double mean_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_patches) /
                              static_cast<double>(batches);
  }

  /// Codec-decode throughput in megapixels/s (0 when nothing decoded yet).
  [[nodiscard]] double codec_decode_mpps() const {
    const double total_s =
        codec_decode.mean_s * static_cast<double>(codec_decode.count);
    return total_s <= 0.0 ? 0.0
                          : static_cast<double>(codec_pixels) / total_s / 1e6;
  }

  /// Multi-line human-readable report.
  [[nodiscard]] std::string to_string() const;
  /// Single JSON object (used by easz_serve --json and bench_serve).
  [[nodiscard]] std::string to_json() const;
};

}  // namespace easz::serve
