#include "serve/transport.hpp"

#include <cstring>
#include <stdexcept>

#include "serve/server.hpp"

#if defined(__linux__)

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <unordered_map>

namespace easz::serve {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw std::runtime_error("transport: fcntl(O_NONBLOCK) failed");
  }
}

double steady_now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Resolves host:port (numeric or named) and connects a blocking socket.
// Returns -1 on failure (callers retry against their deadline).
int try_connect(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return fd;
}

}  // namespace

// ------------------------------------------------------------ TcpEndpoint

struct TcpEndpoint::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  wire::Deframer deframer;
  std::deque<std::vector<std::uint8_t>> writeq;
  std::size_t write_offset = 0;   // into writeq.front()
  std::size_t backlog_bytes = 0;  // unsent bytes across writeq
  int inflight = 0;       // frames handed to the handler, not yet answered
  bool shedding = false;  // latest submit shed; holds reads until flushed
  std::uint32_t armed = 0;  // epoll interest currently installed
  std::shared_ptr<Sender> sender;

  explicit Conn(std::size_t max_frame) : deframer(max_frame) {}
};

// One response (or shed marker) queued by a worker thread for the epoll
// thread to attach to its connection.
struct TcpEndpoint::Outbox {
  std::uint64_t conn_id = 0;
  std::vector<std::uint8_t> frame;
  bool shed = false;
};

struct TcpEndpoint::Impl {
  int listen_fd = -1;
  int epoll_fd = -1;
  int event_fd = -1;
  std::thread thread;
  std::atomic<bool> stopping{false};
  bool stopped = false;  // stop() ran to completion (guarded by stop_mu)
  std::mutex stop_mu;

  std::mutex outbox_mu;
  std::deque<Outbox> outbox;

  // Epoll-thread-only state.
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_conn_id = 2;  // epoll tags 0/1 = listen fd / eventfd
  std::vector<std::uint8_t> read_buf = std::vector<std::uint8_t>(256 << 10);

  // Metrics.
  obs::Gauge* connections = nullptr;
  obs::Counter* accepted = nullptr;
  obs::Counter* closed = nullptr;
  obs::Counter* rx_frames = nullptr;
  obs::Counter* tx_frames = nullptr;
  obs::Counter* rx_bytes = nullptr;
  obs::Counter* tx_bytes = nullptr;
  obs::Counter* dropped = nullptr;
  obs::Counter* suspensions = nullptr;
};

bool TcpEndpoint::Sender::send(std::vector<std::uint8_t> frame, bool shed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (endpoint_ == nullptr) return false;
  Impl& impl = *endpoint_->impl_;
  {
    std::lock_guard<std::mutex> qlock(impl.outbox_mu);
    impl.outbox.push_back({conn_id_, std::move(frame), shed});
  }
  const std::uint64_t one = 1;
  // A full eventfd counter (impossible at 2^64) would drop the wakeup, not
  // the frame; the loop drains the whole outbox on every tick anyway.
  [[maybe_unused]] const ssize_t n =
      ::write(impl.event_fd, &one, sizeof(one));
  return true;
}

TcpEndpoint::TcpEndpoint(TransportConfig config, FrameHandler handler,
                         obs::Registry& registry,
                         const std::string& metric_prefix)
    : config_(std::move(config)),
      handler_(std::move(handler)),
      impl_(std::make_unique<Impl>()) {
  Impl& im = *impl_;
  im.connections = &registry.gauge(metric_prefix + ".connections");
  im.accepted = &registry.counter(metric_prefix + ".accepted");
  im.closed = &registry.counter(metric_prefix + ".closed");
  im.rx_frames = &registry.counter(metric_prefix + ".rx_frames");
  im.tx_frames = &registry.counter(metric_prefix + ".tx_frames");
  im.rx_bytes = &registry.counter(metric_prefix + ".rx_bytes");
  im.tx_bytes = &registry.counter(metric_prefix + ".tx_bytes");
  im.dropped = &registry.counter(metric_prefix + ".dropped_responses");
  im.suspensions = &registry.counter(metric_prefix + ".read_suspensions");

  im.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (im.listen_fd < 0) throw std::runtime_error("transport: socket failed");
  const int one = 1;
  ::setsockopt(im.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(im.listen_fd);
    throw std::runtime_error("transport: bad listen address " + config_.host);
  }
  if (::bind(im.listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(im.listen_fd, 128) != 0) {
    ::close(im.listen_fd);
    throw std::runtime_error("transport: cannot bind " + config_.host + ":" +
                             std::to_string(config_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(im.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  set_nonblocking(im.listen_fd);

  im.epoll_fd = ::epoll_create1(0);
  im.event_fd = ::eventfd(0, EFD_NONBLOCK);
  if (im.epoll_fd < 0 || im.event_fd < 0) {
    ::close(im.listen_fd);
    if (im.epoll_fd >= 0) ::close(im.epoll_fd);
    throw std::runtime_error("transport: epoll/eventfd creation failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = 0;  // 0 = listen fd
  ::epoll_ctl(im.epoll_fd, EPOLL_CTL_ADD, im.listen_fd, &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = 1;  // 1 = eventfd
  ::epoll_ctl(im.epoll_fd, EPOLL_CTL_ADD, im.event_fd, &ev);

  im.thread = std::thread([this] { loop(); });
}

TcpEndpoint::~TcpEndpoint() { stop(); }

void TcpEndpoint::stop() {
  Impl& im = *impl_;
  std::lock_guard<std::mutex> slock(im.stop_mu);
  if (im.stopped) return;
  im.stopping.store(true);
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(im.event_fd, &one, sizeof(one));
  im.thread.join();
  // The loop closed the conn fds on exit; senders are marked dead here so
  // any worker callback still holding one drops its response safely.
  for (auto& [id, conn] : im.conns) {
    std::lock_guard<std::mutex> lock(conn->sender->mu_);
    conn->sender->endpoint_ = nullptr;
  }
  im.conns.clear();
  ::close(im.event_fd);
  ::close(im.listen_fd);
  ::close(im.epoll_fd);
  im.stopped = true;
}

void TcpEndpoint::loop() {
  Impl& im = *impl_;
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];

  // --- helpers (epoll thread only) ------------------------------------
  auto desired_interest = [this](const Conn& c) -> std::uint32_t {
    std::uint32_t want = 0;
    const bool backlogged =
        c.inflight >= config_.max_pipelined ||
        c.backlog_bytes >= config_.max_write_backlog ||
        (c.shedding && c.backlog_bytes > 0);
    if (!backlogged) want |= EPOLLIN;
    if (c.backlog_bytes > 0) want |= EPOLLOUT;
    return want;
  };
  auto update_interest = [&](Conn& c) {
    const std::uint32_t want = desired_interest(c);
    if (want == c.armed) return;
    if ((c.armed & EPOLLIN) != 0 && (want & EPOLLIN) == 0) {
      im.suspensions->add();
    }
    epoll_event ev{};
    ev.events = want | EPOLLRDHUP;
    ev.data.u64 = c.id;
    ::epoll_ctl(im.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
    c.armed = want;
  };
  auto close_conn = [&](std::uint64_t id) {
    auto it = im.conns.find(id);
    if (it == im.conns.end()) return;
    Conn& c = *it->second;
    ::epoll_ctl(im.epoll_fd, EPOLL_CTL_DEL, c.fd, nullptr);
    ::close(c.fd);
    {
      std::lock_guard<std::mutex> lock(c.sender->mu_);
      c.sender->endpoint_ = nullptr;
    }
    im.closed->add();
    im.connections->add(-1);
    im.conns.erase(it);
  };
  auto flush_writes = [&](Conn& c) -> bool {  // false: connection broken
    while (!c.writeq.empty()) {
      const std::vector<std::uint8_t>& front = c.writeq.front();
      const std::size_t remaining = front.size() - c.write_offset;
      const ssize_t n = ::send(c.fd, front.data() + c.write_offset,
                               remaining, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;
      }
      im.tx_bytes->add(static_cast<std::uint64_t>(n));
      c.backlog_bytes -= static_cast<std::size_t>(n);
      c.write_offset += static_cast<std::size_t>(n);
      if (c.write_offset == front.size()) {
        im.tx_frames->add();
        c.writeq.pop_front();
        c.write_offset = 0;
      }
    }
    c.shedding = false;  // fully drained: backpressure episode over
    return true;
  };
  auto read_conn = [&](Conn& c) -> bool {  // false: close the connection
    while (true) {
      const ssize_t n =
          ::recv(c.fd, im.read_buf.data(), im.read_buf.size(), 0);
      if (n == 0) return false;  // orderly EOF
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        return false;
      }
      im.rx_bytes->add(static_cast<std::uint64_t>(n));
      try {
        c.deframer.feed(im.read_buf.data(), static_cast<std::size_t>(n));
        while (auto body = c.deframer.next()) {
          im.rx_frames->add();
          ++c.inflight;
          handler_(std::move(*body), c.sender);
        }
      } catch (const wire::WireError&) {
        // Oversize-length frame: the stream's framing is lost, close.
        return false;
      }
      // Respect backpressure between reads: stop draining the socket the
      // moment this connection crosses a limit.
      if (desired_interest(c) == 0 ||
          (desired_interest(c) & EPOLLIN) == 0) {
        return true;
      }
    }
  };
  auto drain_outbox = [&]() {
    std::deque<Outbox> batch;
    {
      std::lock_guard<std::mutex> lock(im.outbox_mu);
      batch.swap(im.outbox);
    }
    for (Outbox& out : batch) {
      auto it = im.conns.find(out.conn_id);
      if (it == im.conns.end()) {
        im.dropped->add();  // response raced the close; nothing listens
        continue;
      }
      Conn& c = *it->second;
      if (c.inflight > 0) --c.inflight;
      c.backlog_bytes += out.frame.size();
      c.writeq.push_back(std::move(out.frame));
      if (out.shed) c.shedding = true;
      if (!flush_writes(c)) {
        close_conn(c.id);
        continue;
      }
      update_interest(c);
    }
  };
  auto accept_new = [&]() {
    while (true) {
      const int fd = ::accept4(im.listen_fd, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) return;
      if (im.conns.size() >=
          static_cast<std::size_t>(config_.max_connections)) {
        ::close(fd);  // over capacity: refuse outright
        continue;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      auto conn = std::make_unique<Conn>(config_.max_frame_bytes);
      conn->fd = fd;
      conn->id = im.next_conn_id++;
      conn->sender = std::make_shared<Sender>();
      conn->sender->endpoint_ = this;
      conn->sender->conn_id_ = conn->id;
      conn->armed = EPOLLIN;
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.u64 = conn->id;
      ::epoll_ctl(im.epoll_fd, EPOLL_CTL_ADD, fd, &ev);
      im.conns.emplace(conn->id, std::move(conn));
      im.accepted->add();
      im.connections->add(1);
    }
  };
  // ---------------------------------------------------------------------

  while (true) {
    const int n = ::epoll_wait(im.epoll_fd, events, kMaxEvents, 100);
    if (im.stopping.load()) break;
    drain_outbox();
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        accept_new();
        continue;
      }
      if (tag == 1) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(im.event_fd, &drained, sizeof(drained));
        drain_outbox();
        continue;
      }
      auto it = im.conns.find(tag);
      if (it == im.conns.end()) continue;
      Conn& c = *it->second;
      const std::uint32_t ev = events[i].events;
      if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(c.id);
        continue;
      }
      if ((ev & EPOLLOUT) != 0 && !flush_writes(c)) {
        close_conn(c.id);
        continue;
      }
      if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0 && !read_conn(c)) {
        close_conn(c.id);
        continue;
      }
      update_interest(c);
    }
  }
  // Shutdown: close every socket; Sender death is finalized by stop()
  // after the join (it owns the conns map teardown).
  for (auto& [id, conn] : im.conns) {
    ::epoll_ctl(im.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
  }
}

// ---------------------------------------------------------- ServeTransport

ServeTransport::ServeTransport(ReconServer& server, TransportConfig config)
    : server_(server),
      parse_errors_(server.obs().counter("transport.parse_errors")),
      dropped_responses_(
          server.obs().counter("transport.dropped_responses")) {
  endpoint_ = std::make_unique<TcpEndpoint>(
      std::move(config),
      [this](std::vector<std::uint8_t> body,
             const std::shared_ptr<TcpEndpoint::Sender>& reply) {
        on_frame(std::move(body), reply);
      },
      server.obs(), "transport");
}

ServeTransport::~ServeTransport() { stop(); }

void ServeTransport::on_frame(
    std::vector<std::uint8_t> body,
    const std::shared_ptr<TcpEndpoint::Sender>& reply) {
  wire::WireRequest request;
  try {
    request = wire::parse_request(body);
  } catch (const wire::WireError& e) {
    // The frame was garbage but the FRAMING held, so the stream is still
    // in sync: answer with a failure and keep the connection.
    parse_errors_.add();
    wire::WireResponse resp = wire::make_failed_response(e.what(), 0);
    if (!reply->send(wire::encode_response(resp))) {
      dropped_responses_.add();
    }
    return;
  }

  const std::uint64_t tag = request.client_tag;
  obs::Counter& dropped = dropped_responses_;
  const SubmitStatus status = server_.submit_async(
      request.to_serve_request(),
      [reply, tag, &dropped](ServeResponse response,
                             std::exception_ptr error) {
        // Worker-thread completion. The server has already settled the
        // request (slot released, tokens refunded on failure) — all that
        // remains is shipping bytes, and a dead Sender just drops them.
        wire::WireResponse resp;
        if (error) {
          std::string what = "request failed";
          try {
            std::rethrow_exception(error);
          } catch (const std::exception& e) {
            what = e.what();
          } catch (...) {
          }
          resp = wire::make_failed_response(what, response.request_id);
        } else {
          resp = wire::make_ok_response(response);
        }
        resp.client_tag = tag;
        if (!reply->send(wire::encode_response(resp))) dropped.add();
      });
  if (status != SubmitStatus::kAccepted) {
    // Shed at admission: the callback will never run. Answer inline and
    // engage read backpressure until this response has flushed.
    wire::WireResponse resp = wire::make_shed_response(status, 0);
    resp.client_tag = tag;
    if (!reply->send(wire::encode_response(resp), /*shed=*/true)) {
      dropped_responses_.add();
    }
  }
}

// -------------------------------------------------------------- WireClient

WireClient::WireClient(WireClient&& other) noexcept
    : fd_(other.fd_), deframer_(std::move(other.deframer_)) {
  other.fd_ = -1;
}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    deframer_ = std::move(other.deframer_);
    other.fd_ = -1;
  }
  return *this;
}

void WireClient::connect(const std::string& host, int port,
                         double timeout_s) {
  close();
  const double deadline = steady_now_s() + timeout_s;
  while (true) {
    fd_ = try_connect(host, port);
    if (fd_ >= 0) return;
    if (steady_now_s() >= deadline) {
      throw std::runtime_error("WireClient: cannot connect to " + host + ":" +
                               std::to_string(port));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void WireClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  deframer_ = wire::Deframer();
}

void WireClient::send_request(const wire::WireRequest& request) {
  send_frame(wire::encode_request(request));
}

void WireClient::send_frame(const std::vector<std::uint8_t>& frame) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      throw std::runtime_error("WireClient: connection broken during send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<wire::WireResponse> WireClient::poll_response(
    double timeout_s) {
  const double deadline = steady_now_s() + timeout_s;
  std::uint8_t buf[64 << 10];
  while (true) {
    if (auto body = deframer_.next()) {
      return wire::parse_response(*body);
    }
    const double remaining = deadline - steady_now_s();
    if (remaining <= 0.0) return std::nullopt;
    pollfd pfd{fd_, POLLIN, 0};
    const int pr =
        ::poll(&pfd, 1, static_cast<int>(remaining * 1000.0) + 1);
    if (pr <= 0) continue;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      throw std::runtime_error("WireClient: connection closed by peer");
    }
    deframer_.feed(buf, static_cast<std::size_t>(n));
  }
}

wire::WireResponse WireClient::recv_response(double timeout_s) {
  if (auto resp = poll_response(timeout_s)) return std::move(*resp);
  throw std::runtime_error("WireClient: response timeout");
}

wire::WireResponse WireClient::roundtrip(const wire::WireRequest& request) {
  send_request(request);
  return recv_response();
}

}  // namespace easz::serve

#else  // !__linux__

namespace easz::serve {

// Portable stubs: the networked tier is epoll-based and Linux-only (like
// perf_counters' graceful degradation, construction states why clearly
// instead of failing to compile the whole library elsewhere).

struct TcpEndpoint::Impl {};

bool TcpEndpoint::Sender::send(std::vector<std::uint8_t>, bool) {
  return false;
}

TcpEndpoint::TcpEndpoint(TransportConfig, FrameHandler, obs::Registry&,
                         const std::string&) {
  throw std::runtime_error("TcpEndpoint requires Linux epoll");
}
TcpEndpoint::~TcpEndpoint() = default;
void TcpEndpoint::stop() {}
void TcpEndpoint::loop() {}

ServeTransport::ServeTransport(ReconServer& server, TransportConfig)
    : server_(server),
      parse_errors_(server.obs().counter("transport.parse_errors")),
      dropped_responses_(
          server.obs().counter("transport.dropped_responses")) {
  throw std::runtime_error("ServeTransport requires Linux epoll");
}
ServeTransport::~ServeTransport() = default;
void ServeTransport::on_frame(std::vector<std::uint8_t>,
                              const std::shared_ptr<TcpEndpoint::Sender>&) {}

WireClient::WireClient(WireClient&&) noexcept {}
WireClient& WireClient::operator=(WireClient&&) noexcept { return *this; }
void WireClient::connect(const std::string&, int, double) {
  throw std::runtime_error("WireClient requires Linux sockets");
}
void WireClient::close() {}
void WireClient::send_request(const wire::WireRequest&) {
  throw std::runtime_error("WireClient requires Linux sockets");
}
void WireClient::send_frame(const std::vector<std::uint8_t>&) {
  throw std::runtime_error("WireClient requires Linux sockets");
}
wire::WireResponse WireClient::recv_response(double) {
  throw std::runtime_error("WireClient requires Linux sockets");
}
std::optional<wire::WireResponse> WireClient::poll_response(double) {
  throw std::runtime_error("WireClient requires Linux sockets");
}
wire::WireResponse WireClient::roundtrip(const wire::WireRequest&) {
  throw std::runtime_error("WireClient requires Linux sockets");
}

}  // namespace easz::serve

#endif
