// LRU cache of finished reconstructions.
//
// Edge fleets resend identical content all the time — a stuck wildlife
// camera uploads the same frame every trigger, an industrial line images
// identical parts — and reconstruction is the expensive stage, so the server
// memoises final images. The key is everything that determines the output
// pixels: the mask side channel (hash stands in for the shared mask seed),
// the request geometry, the payload bytes and the codec that decodes them.
// Capacity is counted in pixel bytes, the quantity that actually bounds
// server RAM, and eviction is least-recently-used.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/pipeline.hpp"
#include "image/image.hpp"

namespace easz::serve {

/// FNV-1a 64-bit — stable, dependency-free content hash for cache keys.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Identity of a reconstruction result. The hashes bucket lookups cheaply;
/// equality compares the FULL payload and mask bytes, so a 64-bit hash
/// collision (constructible against non-cryptographic FNV by an adversarial
/// client) can never serve another request's pixels. The byte copies are
/// small next to the cached image they key.
struct CacheKey {
  std::uint64_t payload_hash = 0;
  std::uint64_t mask_hash = 0;  ///< hash of the mask side channel
  std::vector<std::uint8_t> payload_bytes;
  std::vector<std::uint8_t> mask_bytes;
  std::string codec;
  int full_width = 0;
  int full_height = 0;
  int padded_width = 0;
  int padded_height = 0;
  int erased_per_row = 0;
  int axis = 0;

  bool operator==(const CacheKey& o) const = default;
};

/// Derives the key from a request's wire content.
CacheKey make_cache_key(const core::EaszCompressed& c, const std::string& codec);

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

/// Thread-safe byte-bounded LRU of decoded images. Values are shared_ptr so
/// a hit can be handed to a client while eviction proceeds concurrently.
class ResultCache {
 public:
  /// `capacity_bytes` 0 disables caching entirely (every get misses).
  explicit ResultCache(std::size_t capacity_bytes);

  /// Returns the cached image and refreshes recency, or nullptr.
  [[nodiscard]] std::shared_ptr<const image::Image> get(const CacheKey& key);

  /// Inserts (or refreshes) a result, evicting LRU entries until the total
  /// byte cost fits. Images larger than the whole capacity are not cached.
  void put(const CacheKey& key, std::shared_ptr<const image::Image> img);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const image::Image> image;
    std::size_t cost = 0;
  };
  using LruList = std::list<Entry>;

  static std::size_t cost_of(const image::Image& img) {
    return img.sample_count() * sizeof(float);
  }
  void evict_to_fit_locked();

  const std::size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  // front = most recent
  std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace easz::serve
