// Sharded LRU cache of finished reconstructions.
//
// Edge fleets resend identical content all the time — a stuck wildlife
// camera uploads the same frame every trigger, an industrial line images
// identical parts — and reconstruction is the expensive stage, so the server
// memoises final images. The key is everything that determines the output
// pixels: the mask side channel (hash stands in for the shared mask seed),
// the request geometry, the payload bytes and the codec that decodes them.
// Tenancy is deliberately NOT part of the key: identical bytes decode to
// identical pixels, so tenants share hits.
//
// The table is split into N shards selected by key hash, each with its own
// mutex, LRU list and byte budget (capacity / N). At high worker counts
// every request path touches the cache (probe at submit, insert at finish),
// and a single mutex there serialises otherwise independent workers; with
// shards, concurrent hits/inserts contend only when they land in the same
// shard. Eviction is least-recently-used PER SHARD — the budget split makes
// eviction local, at the cost of a slightly earlier eviction for a shard
// receiving outsized entries. Capacity is counted in pixel + key bytes, the
// quantity that actually bounds server RAM.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pipeline.hpp"
#include "image/image.hpp"

namespace easz::serve {

/// FNV-1a 64-bit — stable, dependency-free content hash for cache keys.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                      std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Identity of a reconstruction result. The hashes bucket lookups cheaply;
/// equality compares the FULL payload and mask bytes, so a 64-bit hash
/// collision (constructible against non-cryptographic FNV by an adversarial
/// client) can never serve another request's pixels. The byte copies are
/// small next to the cached image they key.
struct CacheKey {
  std::uint64_t payload_hash = 0;
  std::uint64_t mask_hash = 0;  ///< hash of the mask side channel
  std::vector<std::uint8_t> payload_bytes;
  std::vector<std::uint8_t> mask_bytes;
  std::string codec;
  int full_width = 0;
  int full_height = 0;
  int padded_width = 0;
  int padded_height = 0;
  int erased_per_row = 0;
  int axis = 0;

  bool operator==(const CacheKey& o) const = default;
};

/// Derives the key from a request's wire content.
CacheKey make_cache_key(const core::EaszCompressed& c, const std::string& codec);

struct CacheKeyHash {
  std::size_t operator()(const CacheKey& k) const;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;
};

/// Thread-safe byte-bounded sharded LRU of decoded images. Values are
/// shared_ptr so a hit can be handed to a client while eviction proceeds
/// concurrently.
class ResultCache {
 public:
  /// `capacity_bytes` 0 disables caching entirely (every get misses).
  /// `shards` splits the table and the byte budget `shards` ways; 1 keeps
  /// the classic single-lock LRU (and exact global LRU order).
  explicit ResultCache(std::size_t capacity_bytes, int shards = 1);

  /// Returns the cached image and refreshes recency, or nullptr.
  [[nodiscard]] std::shared_ptr<const image::Image> get(const CacheKey& key);

  /// Inserts (or refreshes) a result, evicting LRU entries of the key's
  /// shard until its byte budget fits. Images larger than one shard's
  /// budget are not cached.
  void put(const CacheKey& key, std::shared_ptr<const image::Image> img);

  /// Aggregate over all shards.
  [[nodiscard]] CacheStats stats() const;
  /// One shard's view (tests: per-shard eviction/accounting checks).
  [[nodiscard]] CacheStats shard_stats(int shard) const;

  [[nodiscard]] std::size_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] int shards() const { return static_cast<int>(shards_.size()); }
  [[nodiscard]] std::size_t shard_capacity_bytes() const {
    return shard_capacity_;
  }
  /// Shard a key routes to (stable across runs; tests build colliding keys).
  [[nodiscard]] int shard_of(const CacheKey& key) const;

  /// Audit hook: re-derives every resident entry's cost from its image and
  /// key bytes and sums them, bypassing the incremental `bytes` counters.
  /// Equal to stats().bytes iff byte accounting is exact.
  [[nodiscard]] std::size_t recompute_bytes() const;

 private:
  struct Entry {
    CacheKey key;
    std::shared_ptr<const image::Image> image;
    std::size_t cost = 0;
  };
  using LruList = std::list<Entry>;

  struct Shard {
    mutable std::mutex mu;
    LruList lru;  // front = most recent
    std::unordered_map<CacheKey, LruList::iterator, CacheKeyHash> index;
    std::size_t bytes = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  static std::size_t cost_of(const CacheKey& key, const image::Image& img) {
    // The key's wire bytes are held twice per entry (index map key and
    // Entry.key, the standard list+map LRU layout), so charge them twice to
    // keep the byte budget honest about real RAM.
    return img.sample_count() * sizeof(float) +
           2 * (key.payload_bytes.size() + key.mask_bytes.size());
  }
  static void evict_to_fit_locked(Shard& shard, std::size_t budget);

  const std::size_t capacity_;
  std::size_t shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace easz::serve
