// Concurrent batched reconstruction server (the paper's asymmetric
// deployment, server half, grown into a runtime).
//
// Many edge clients submit EaszCompressed blobs; the server answers with
// reconstructed images. Internals (DESIGN.md §3):
//
//   submit() -> [bounded request queue] -> worker pool
//                    worker: cache check happened at submit; codec decode +
//                            unsqueeze + tokenise (EaszPipeline::decode_tokens)
//                    -> [batch pool, grouped by erase mask] ->
//                    worker: one transformer forward over up to
//                            max_batch_patches patches POOLED ACROSS REQUESTS
//                            sharing a mask — on the grad-free tensor::kern
//                            path (DESIGN.md §4), sized by kernel_threads —
//                            -> scatter -> finished requests assembled,
//                            cached, promises fulfilled.
//
// Why cross-request batching is sound: per-patch transformer outputs are
// independent of batch composition (see ReconstructionModel::reconstruct),
// so pooled results are bit-identical to sequential EaszPipeline::decode.
// Requests that share nothing still win: workers run decode and forward
// passes concurrently, and the transformer's matmuls amortise better over
// large batches.
//
// Backpressure: the request queue is bounded; submit() either blocks
// (kBlock) or reports rejection (kReject) when it is full, so a traffic
// spike degrades into queueing delay or load shedding instead of unbounded
// memory growth.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "codec/codec.hpp"
#include "core/pipeline.hpp"
#include "core/recon_model.hpp"
#include "serve/cache.hpp"
#include "serve/stats.hpp"
#include "util/stopwatch.hpp"

namespace easz::serve {

enum class BackpressurePolicy {
  kBlock,   ///< submit() waits for queue space (applies backpressure upstream)
  kReject,  ///< submit() fails fast; caller decides whether to retry
};

struct ServerConfig {
  int workers = 4;              ///< worker threads (decode + reconstruct)
  int max_queue = 64;           ///< bounded request queue length
  int max_batch_patches = 32;   ///< patches per transformer forward pass
  /// Oldest tokens a mask group may hold before it is batched even while
  /// under-full. Bounds both tail latency of rare-mask requests (they are
  /// never starved by a dominant group under sustained load) and the token
  /// memory parked in the batch pool (<= decode throughput x this window).
  /// <= 0 launches every deposit immediately (pure latency mode).
  double max_batch_wait_s = 0.05;
  std::size_t cache_bytes = 64ULL << 20;  ///< result cache capacity (0 = off)
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// > 0: resize the tensor::kern pool the transformer forward runs on
  /// (process-global — the last server constructed wins; 0 leaves the pool
  /// alone). Worker threads batch requests; kernel threads split each
  /// batch's GEMM row panels, so total CPU footprint is roughly
  /// workers x kernel_threads at full load.
  int kernel_threads = 0;
};

/// One edge upload: the wire blob plus the codec that produced its payload.
struct ServeRequest {
  core::EaszCompressed compressed;
  std::string codec = "jpeg";  ///< name registered via register_codec()
};

/// Wall-clock stage costs of one request, as experienced by that request.
struct RequestTiming {
  double queue_wait_s = 0.0;
  double decode_s = 0.0;
  double codec_decode_s = 0.0;  ///< inner ImageCodec::decode (within decode)
  double batch_wait_s = 0.0;
  double reconstruct_s = 0.0;  ///< forward pass of the batch it rode in
  double assemble_s = 0.0;
  double total_s = 0.0;
};

struct ServeResponse {
  std::shared_ptr<const image::Image> image;
  bool cache_hit = false;
  RequestTiming timing;
};

struct SubmitResult {
  bool accepted = false;               ///< false: shed by kReject backpressure
  std::future<ServeResponse> response;  ///< valid only when accepted
};

class ReconServer {
 public:
  /// The model is borrowed and must outlive the server. Its patchify config
  /// fixes the token geometry every request must match.
  ReconServer(ServerConfig config, const core::ReconstructionModel& model);

  /// Drains accepted work, then joins the workers.
  ~ReconServer();

  ReconServer(const ReconServer&) = delete;
  ReconServer& operator=(const ReconServer&) = delete;

  /// Makes `codec` available to requests under `name`. The codec is borrowed
  /// and must outlive the server; registration is allowed at any time but a
  /// registered codec's quality must not be mutated while serving.
  void register_codec(const std::string& name, codec::ImageCodec* codec);

  /// Submits one request. Cache hits complete immediately. A queue-full
  /// condition blocks or rejects according to the backpressure policy.
  /// Decode failures surface as exceptions on the returned future.
  SubmitResult submit(ServeRequest request);

  /// Blocks until every accepted request has completed or failed.
  void drain();

  [[nodiscard]] ServerStatsSnapshot stats() const;
  [[nodiscard]] const ServerConfig& config() const { return config_; }

 private:
  // One request in flight, from accept to promise fulfilment.
  struct Job {
    ServeRequest request;
    std::promise<ServeResponse> promise;
    CacheKey cache_key;
    util::Stopwatch since_submit;
    RequestTiming timing;
    bool settled = false;  // promise already fulfilled/failed (guarded by mu_)
  };

  // A decoded request waiting for its patches to be reconstructed.
  struct InFlight {
    std::shared_ptr<Job> job;
    core::DecodedTokens decoded;
    tensor::Tensor result;      // filled batch by batch
    int patches_remaining = 0;  // guarded by mu_
    util::Stopwatch since_tokens_ready;
  };

  // Decoded patches of requests sharing one erase mask, waiting to be
  // pooled into forward passes.
  struct PendingGroup {
    core::EraseMask mask;
    struct Span {
      std::shared_ptr<InFlight> inflight;
      int offset = 0;  // first not-yet-batched patch
      int count = 0;   // patches left in this span
    };
    std::vector<Span> spans;
    int patches = 0;
  };

  struct BatchItem {
    std::shared_ptr<InFlight> inflight;
    int offset = 0;
    int count = 0;
    double batch_wait_s = 0.0;
  };
  struct FormedBatch {
    core::EraseMask mask;
    std::vector<BatchItem> items;
    int patches = 0;
  };

  void worker_loop();
  // All four run with mu_ held.
  [[nodiscard]] bool batch_ready_locked() const;
  [[nodiscard]] bool group_ready_locked(const PendingGroup& group) const;
  [[nodiscard]] FormedBatch form_batch_locked();
  [[nodiscard]] bool flush_conditions_locked() const;

  void run_decode(const std::shared_ptr<Job>& job);
  void run_batch(FormedBatch batch);
  void finish_request(const std::shared_ptr<InFlight>& inflight);
  void fail_request(const std::shared_ptr<Job>& job, std::exception_ptr error);

  const ServerConfig config_;
  const core::ReconstructionModel& model_;
  const core::PatchifyConfig patchify_;
  ResultCache cache_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: new job / ready batch / stop
  std::condition_variable space_cv_;  // submitters: queue has room
  std::condition_variable idle_cv_;   // drain(): outstanding hit zero
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<std::string, PendingGroup> pending_;  // key: mask bytes
  std::unordered_map<std::string, codec::ImageCodec*> codecs_;
  int decoding_ = 0;     // workers currently inside run_decode
  int outstanding_ = 0;  // accepted but not yet completed/failed
  int max_queue_depth_ = 0;
  bool stopping_ = false;

  // Counters (guarded by mu_; read via stats()).
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_patches_ = 0;
  std::uint64_t cross_request_batches_ = 0;
  std::uint64_t codec_pixels_ = 0;

  struct Stages {
    StageStats queue_wait, decode, codec_decode, batch_wait, reconstruct,
        assemble, total;
  };
  Stages stages_;

  std::vector<std::thread> workers_;
};

}  // namespace easz::serve
