// Concurrent batched multi-tenant reconstruction server (the paper's
// asymmetric deployment, server half, grown into a runtime).
//
// Many edge clients submit EaszCompressed blobs; the server answers with
// reconstructed images. Internals (DESIGN.md §3, §6):
//
//   submit()/submit_async()
//     -> tenant admission (token bucket + inflight quota, serve/tenant.hpp)
//     -> [per-tenant bounded queues, weighted-deficit round-robin dequeue]
//     -> staged worker pipeline (DESIGN.md §9): three explicit stage tasks
//        connected by small bounded pools, so stage K of batch N overlaps
//        stage K+1 of batch N-1 —
//          DECODE   codec decode + unsqueeze + tokenise
//                   (EaszPipeline::decode_tokens)
//          -> [batch pool, grouped by erase mask] ->
//          FORWARD  one transformer forward over up to max_batch_patches
//                   patches POOLED ACROSS REQUESTS sharing a mask — on the
//                   grad-free tensor::kern path (DESIGN.md §4), sized by
//                   kernel_threads (and optionally shaped to the LLC, §9.2)
//                   — then scatter
//          -> [bounded assemble ring, capacity pipeline_depth x workers] ->
//          ASSEMBLE tokens -> pixels -> deblock, cached (sharded LRU),
//                   promises/callbacks fulfilled.
//        Workers specialize by stage (index mod 3 picks which stage they
//        try first) but steal across stages whenever their preferred stage
//        has no runnable work, so the pool stays work-conserving.
//
// Why cross-request batching is sound: per-patch transformer outputs are
// independent of batch composition (see ReconstructionModel::reconstruct),
// so pooled results are bit-identical to sequential EaszPipeline::decode —
// under ANY dequeue order, which is why priority scheduling cannot change
// a single output byte.
//
// Tenant isolation: each tenant owns a bounded FIFO; workers drain tenants
// weighted-deficit round-robin, so a flooding tenant saturates its own
// queue and its own share of worker bandwidth, never the whole server.
// Admission (rate + burst + max-inflight) sheds excess load per tenant
// before it touches a queue. Requests that name no (or an unknown) tenant
// ride the built-in "default" tenant and see the classic single-queue
// behaviour.
//
// Backpressure: per-tenant queues are bounded; submit() either blocks
// (kBlock) or reports rejection (kReject) when the tenant's queue is full,
// so a traffic spike degrades into queueing delay or load shedding instead
// of unbounded memory growth.
//
// Determinism hooks (tests/serve_sched_test.cpp): `sched_clock` replaces
// the scheduler's time source (batch aging, token-bucket refill) with a
// virtual clock, and `workers = 0` starts no threads — the caller drives
// the scheduler one action at a time via step(), making interleavings
// reproducible enough to prove fairness and quota invariants exactly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "codec/codec.hpp"
#include "core/pipeline.hpp"
#include "core/recon_model.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/cache.hpp"
#include "serve/ladder.hpp"
#include "serve/stats.hpp"
#include "serve/tenant.hpp"
#include "util/stopwatch.hpp"

namespace easz::serve {

enum class BackpressurePolicy {
  kBlock,   ///< submit() waits for queue space (applies backpressure upstream)
  kReject,  ///< submit() fails fast; caller decides whether to retry
};

/// Server-wide numeric path for the reconstruct stage (DESIGN.md §7).
/// kAuto picks int8 when the deployed model is quantized, else fp32.
/// Per-tenant TenantConfig::precision overrides this per request; batches
/// and cache entries never mix precisions.
enum class PrecisionPolicy { kFp32, kInt8, kAuto };

/// One scheduler action of the staged decode pipeline. step_stage() reports
/// which stage it ran so the deterministic harness (and the per-stage
/// perf-counter bench) can attribute work action by action.
enum class StageAction {
  kIdle = 0,  ///< nothing runnable
  kDecode,    ///< dequeued one request, decoded it into the batch pool
  kForward,   ///< pooled one batch, ran the transformer forward, scattered
  kAssemble,  ///< popped one finished request off the ring, delivered it
};

[[nodiscard]] const char* stage_action_name(StageAction action);

struct ServerConfig {
  /// Worker threads (decode + reconstruct). 0 = manual scheduling mode: no
  /// threads start and the caller pumps the scheduler via step(). Manual
  /// mode requires kReject backpressure (a blocked submitter could never
  /// be woken — the constructor enforces this).
  int workers = 4;
  int max_queue = 64;           ///< bounded request queue length PER TENANT
  int max_batch_patches = 32;   ///< patches per transformer forward pass
  /// Oldest tokens a mask group may hold before it is batched even while
  /// under-full. Bounds both tail latency of rare-mask requests (they are
  /// never starved by a dominant group under sustained load) and the token
  /// memory parked in the batch pool (<= decode throughput x this window).
  /// <= 0 launches every deposit immediately (pure latency mode).
  double max_batch_wait_s = 0.05;
  std::size_t cache_bytes = 64ULL << 20;  ///< result cache capacity (0 = off)
  /// Result-cache shard count (lock striping; byte budget splits evenly).
  int cache_shards = 8;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// > 0: resize the tensor::kern pool the transformer forward runs on
  /// (process-global — the last server constructed wins; 0 leaves the pool
  /// alone). Worker threads batch requests; kernel threads split each
  /// batch's GEMM row panels, so total CPU footprint is roughly
  /// workers x kernel_threads at full load.
  int kernel_threads = 0;
  /// Default reconstruct precision. kInt8 (and any tenant pinning kInt8)
  /// requires the deployed model to be quantized — the constructor throws
  /// otherwise; kAuto degrades to fp32 instead.
  PrecisionPolicy precision = PrecisionPolicy::kFp32;
  /// Tenants registered at construction; more may be added at runtime via
  /// tenants().add(). Requests naming none of them ride the default tenant.
  std::vector<TenantConfig> tenants;
  /// Scheduler time source override (virtual clock for deterministic
  /// tests). Governs batch aging and token-bucket refill; latency
  /// TELEMETRY stays on the wall clock. Empty = monotonic wall clock.
  ClockFn sched_clock;
  /// Request-trace ring capacity in spans (the last N stage spans are
  /// retained and exportable as Chrome trace JSON via trace()). 0 turns
  /// tracing off entirely; request ids are still minted.
  int trace_spans = 4096;
  /// Forward→assemble pipeline depth: how many fully-reconstructed requests
  /// may park in the bounded assemble ring per worker (capacity =
  /// pipeline_depth x max(1, workers)). 1 forces near-lockstep stages (a
  /// forward stalls until the previous batch's requests are assembled);
  /// 2-3 lets the ALU-bound forward of batch N overlap the memory-bound
  /// assemble of batch N-1. Output bytes are identical at every depth.
  int pipeline_depth = 2;
  /// Pin serve workers (and the tensor::kern pool) round-robin across the
  /// CPUs in this process's affinity set, so a stage-specialized worker
  /// keeps its slot tables / packed-B tiles in one core's private caches.
  /// Graceful no-op on platforms without thread affinity.
  bool pin_workers = false;
  /// Shape max_batch_patches down so the forward's working set (weights +
  /// packed-B tiles + activations + slot tables — see serve/cache_budget.hpp)
  /// stays LLC-resident. Shaping is per precision: an int8 tenant pool
  /// affords a larger batch than fp32 inside the same cache. Off by
  /// default; output bytes are identical either way.
  bool shape_batches_to_llc = false;
  /// LLC size the shaper budgets against. 0 = detect via sysfs/sysconf,
  /// falling back to CacheBudget::kDefaultLlcBytes when undetectable.
  std::size_t llc_bytes = 0;
  /// Server-default degradation-ladder policy (serve/ladder.hpp, DESIGN.md
  /// §10). Disabled unless ladder.slo_p95_s > 0; TenantConfig::slo_p95_s
  /// overrides the SLO per tenant (the other knobs are server-wide).
  LadderConfig ladder;
  /// Test-only fault injection: invoked at the START of each stage-action
  /// body (kDecode/kForward/kAssemble) with the stage about to run; a throw
  /// from here exercises the failure path exactly as a throwing codec /
  /// forward / assemble would. Never set in production.
  std::function<void(StageAction)> fault_injection;
};

/// One edge upload: the wire blob plus the codec that produced its payload
/// and the tenant whose policy governs it ("" = default tenant).
struct ServeRequest {
  core::EaszCompressed compressed;
  std::string codec = "jpeg";  ///< name registered via register_codec()
  std::string tenant;          ///< name registered via tenants().add()
  /// Per-REQUEST numeric-path ask (the wire protocol's precision field,
  /// DESIGN.md §11). Resolution order: tenant pin > this > slot default —
  /// a tenant's fp32 pin is a quality contract no request can override.
  /// kInt8 on an unquantized deployment degrades to the slot default, the
  /// same policy as PrecisionPolicy::kAuto; the precision actually served
  /// still keys the batch pool and the result cache, so bytes stay exact.
  TenantPrecision precision = TenantPrecision::kInherit;
};

/// Wall-clock stage costs of one request, as experienced by that request.
struct RequestTiming {
  double queue_wait_s = 0.0;
  double decode_s = 0.0;
  double codec_decode_s = 0.0;  ///< inner ImageCodec::decode (within decode)
  double batch_wait_s = 0.0;
  double reconstruct_s = 0.0;  ///< forward pass of the batch it rode in
  double assemble_s = 0.0;
  double total_s = 0.0;
};

struct ServeResponse {
  std::shared_ptr<const image::Image> image;
  bool cache_hit = false;
  /// Server-unique trace id minted at submit (1-based; 0 only in
  /// default-constructed responses). Keys this request's spans in the
  /// exported trace and lets clients correlate callbacks with submits.
  std::uint64_t request_id = 0;
  /// Degradation-ladder rung this request was served at (LadderRung as an
  /// int; 0 = full quality). Clients see exactly what they were degraded to.
  int rung = 0;
  /// Deployed model version the reconstruction ran on (DESIGN.md §10).
  /// Every byte of `image` is a function of exactly this version — batches
  /// never mix versions, even mid-hot-swap.
  std::uint64_t model_version = 0;
  RequestTiming timing;
};

/// Why a submit did (not) enter the pipeline.
enum class SubmitStatus {
  kAccepted,
  kQueueFull,       ///< tenant queue full under kReject (or stop during block)
  kRateLimited,     ///< tenant token bucket empty
  kQuotaExceeded,   ///< tenant max_inflight reached
  kOverloaded,      ///< tenant ladder at its shed rung (DESIGN.md §10)
};

struct SubmitResult {
  bool accepted = false;  ///< false: shed — see status for the reason
  SubmitStatus status = SubmitStatus::kAccepted;
  std::uint64_t request_id = 0;  ///< trace id (minted even for shed submits)
  std::future<ServeResponse> response;  ///< valid only when accepted
};

/// Completion hook for submit_async(). Exactly one of (response, error) is
/// meaningful: error == nullptr on success. Invoked on a worker thread (or
/// inline from submit_async for cache hits); must not throw and should not
/// block — hand heavy work to another thread.
using ResponseCallback =
    std::function<void(ServeResponse response, std::exception_ptr error)>;

class ReconServer {
 public:
  /// The model is borrowed and must outlive the server. Its patchify config
  /// fixes the token geometry every request must match.
  ReconServer(ServerConfig config, const core::ReconstructionModel& model);

  /// Drains accepted work, then joins the workers.
  ~ReconServer();

  ReconServer(const ReconServer&) = delete;
  ReconServer& operator=(const ReconServer&) = delete;

  /// Makes `codec` available to requests under `name`. The codec is borrowed
  /// and must outlive the server; registration is allowed at any time but a
  /// registered codec's quality must not be mutated while serving.
  void register_codec(const std::string& name, codec::ImageCodec* codec);

  /// Submits one request. Cache hits complete immediately (bypassing
  /// admission — they consume no reconstruction capacity). A shed request
  /// reports why in `status`. Decode failures surface as exceptions on the
  /// returned future.
  SubmitResult submit(ServeRequest request);

  /// Open-loop submission: like submit() but delivers the outcome through
  /// `callback` instead of a future, so a driver can pump requests without
  /// parking a thread per response. Cache hits invoke the callback inline
  /// before returning. On a shed submit the callback is NEVER invoked —
  /// the returned status is the whole story.
  SubmitStatus submit_async(ServeRequest request, ResponseCallback callback);

  /// Blocks until every accepted request has completed or failed. In
  /// manual scheduling mode (workers == 0) this pumps step() instead.
  void drain();

  /// Manual scheduling mode only (workers == 0): runs EXACTLY ONE
  /// pipeline-stage action — assemble one finished request if the ring
  /// holds any, else launch one ready batch's forward, else decode one
  /// dequeued request (that fixed priority makes trajectories replayable)
  /// — on the calling thread and reports which stage ran. kIdle means
  /// there was nothing to do. The deterministic harness interleaves
  /// step_stage() with virtual-clock advances to replay any schedule it
  /// wants, byte-for-byte reproducibly.
  StageAction step_stage();

  /// step_stage() != kIdle — the classic pump-until-idle driver.
  bool step();

  /// Versioned hot model reload (DESIGN.md §10). Validates the new model's
  /// token geometry (patchify + channels) against the deployed one, stamps
  /// it with the next version number and atomically makes it current.
  /// NO DRAIN: requests pin their model slot (a shared_ptr) at submit, so
  /// in-flight batches finish on the version they started with — the epoch
  /// guard is the shared_ptr refcount itself. Superseded versions stay
  /// retained while any tenant pins them (TenantConfig::pin_version) and
  /// are pruned otherwise. Throws std::invalid_argument on a geometry
  /// mismatch, or when the new model is unquantized while the server
  /// precision policy is kInt8 or any tenant pins int8. Returns the new
  /// version. Thread-safe against concurrent submits.
  std::uint64_t deploy_model(std::shared_ptr<core::ReconstructionModel> model);

  /// Version of the model new non-pinned submits run on (1-based; the
  /// construction-time model is version 1).
  [[nodiscard]] std::uint64_t model_version() const;

  /// Current ladder rung of a tenant ("" = default tenant). kFull until
  /// the tenant's first pressure window closes.
  [[nodiscard]] LadderRung tenant_rung(const std::string& tenant) const;

  /// Effective per-forward patch budget for `precision` after LLC shaping
  /// (== config().max_batch_patches when shape_batches_to_llc is off).
  [[nodiscard]] int shaped_batch_patches(nn::Precision precision) const;

  /// LLC size the batch shaper budgeted against (0 when shaping is off).
  [[nodiscard]] std::size_t llc_budget_bytes() const { return llc_budget_; }

  /// Tenant table (add/inspect at any time; see serve/tenant.hpp).
  [[nodiscard]] TenantRegistry& tenants() { return tenants_; }
  [[nodiscard]] const TenantRegistry& tenants() const { return tenants_; }

  [[nodiscard]] ServerStatsSnapshot stats() const;
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] const ResultCache& cache() const { return cache_; }

  /// This server's metric registry: serve.* counters (submitted, completed,
  /// shed.*, cache_hits, batches, …) plus the serve.queue_depth gauge.
  /// Per-instance so concurrent servers / back-to-back bench scenarios
  /// never pollute each other; library-level metrics (kern pool, codecs)
  /// live in obs::Registry::global(). Snapshot + obs::Registry::delta_json
  /// yields the JSON-lines rate report easz_serve --stats-every emits.
  [[nodiscard]] obs::Registry& obs() { return obs_; }
  [[nodiscard]] const obs::Registry& obs() const { return obs_; }

  /// Request-span ring (last config().trace_spans stage spans); export via
  /// trace().to_chrome_json(). Disabled (empty) when trace_spans == 0.
  [[nodiscard]] const obs::TraceRing& trace() const { return trace_; }

 private:
  // One deployed model version. Immutable after construction; shared by
  // every job submitted while it was current (plus tenants pinning it).
  // The shared_ptr refcount IS the swap epoch guard: deploy_model replaces
  // `current_slot_` and the old slot dies when its last in-flight batch
  // settles, with no drain barrier.
  struct ModelSlot {
    std::shared_ptr<const core::ReconstructionModel> model;
    std::uint64_t version = 0;
    bool quantized = false;
    nn::Precision default_precision = nn::Precision::kFp32;  // resolved kAuto
    // LLC-shaped per-precision forward budgets for THIS model's footprint
    // (== max_batch_patches when shaping is off).
    int shaped_fp32 = 0;
    int shaped_int8 = 0;
  };

  // One request in flight, from accept to promise/callback fulfilment.
  struct Job {
    ServeRequest request;
    std::string tenant;  // resolved tenant name (admission + WDRR + stats)
    nn::Precision precision = nn::Precision::kFp32;  // resolved at submit
    std::shared_ptr<const ModelSlot> slot;  // model version pinned at submit
    LadderRung rung = LadderRung::kFull;    // ladder decision at submit
    bool deblock = true;    // rung plan: run assemble's deblocking pass
    bool coarse = false;    // rung plan: neighbour-fill, no forward at all
    std::promise<ServeResponse> promise;
    ResponseCallback callback;  // non-null: callback path, promise unused
    CacheKey cache_key;
    util::Stopwatch since_submit;
    std::uint64_t request_id = 0;  // trace id, minted at submit
    double submit_us = 0.0;        // submit instant on the trace clock
    double submit_t = 0.0;         // submit instant on the SCHED clock
    RequestTiming timing;
    bool settled = false;  // outcome already delivered (guarded by mu_)
  };

  // A decoded request waiting for its patches to be reconstructed.
  struct InFlight {
    std::shared_ptr<Job> job;
    core::DecodedTokens decoded;
    tensor::Tensor result;      // filled batch by batch
    int patches_remaining = 0;  // guarded by mu_
    util::Stopwatch since_tokens_ready;  // wall clock, for batch_wait stats
    double ready_t = 0.0;                // sched clock, for the age trigger
  };

  // Decoded patches of requests sharing one erase mask, one precision AND
  // one model version, waiting to be pooled into forward passes (the group
  // key carries all three, so a mixed-precision or torn mixed-version batch
  // can never form — hot swap included).
  struct PendingGroup {
    core::EraseMask mask;
    nn::Precision precision = nn::Precision::kFp32;
    std::shared_ptr<const ModelSlot> slot;
    struct Span {
      std::shared_ptr<InFlight> inflight;
      int offset = 0;  // first not-yet-batched patch
      int count = 0;   // patches left in this span
    };
    std::vector<Span> spans;
    int patches = 0;
  };

  struct BatchItem {
    std::shared_ptr<InFlight> inflight;
    int offset = 0;
    int count = 0;
    double batch_wait_s = 0.0;
  };
  struct FormedBatch {
    core::EraseMask mask;
    nn::Precision precision = nn::Precision::kFp32;
    std::shared_ptr<const ModelSlot> slot;
    std::vector<BatchItem> items;
    int patches = 0;
  };

  // One tenant's slice of the request queue. Entries are never erased, so
  // references handed out under mu_ stay valid across rehashes and waits.
  struct TenantQueue {
    std::deque<std::shared_ptr<Job>> jobs;
    int weight = 1;   // refreshed from the registry at enqueue
    int deficit = 0;  // WDRR pops remaining before the ring rotates
    bool active = false;  // currently linked into rr_
  };

  // Per-tenant serve-side counters + latency (admission counters live in
  // the registry). std::map: stable references for lock-free recording.
  struct TenantLocal {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t shed_queue_full = 0;
    std::uint64_t shed_overloaded = 0;  // ladder shed-rung rejections
    StageStats total;  // self-locking; recorded outside mu_
    // Degradation ladder state (guarded by mu_, like the counters above).
    // Config snapshot taken on first touch: tenant SLO override (if any)
    // over the server-wide LadderConfig.
    TenantLadder ladder;
    bool ladder_init = false;
  };

  /// Precision governing one request: the tenant's override, else the
  /// request's own ask (wire clients), else the slot's default. A tenant
  /// int8 override is always satisfiable on the slot it resolves against —
  /// the registry rejects kInt8 pins on unquantized models and deploy_model
  /// rejects unquantized swaps under int8 pins; a REQUEST int8 ask carries
  /// no such guarantee and degrades to the slot default when unquantized.
  [[nodiscard]] nn::Precision resolve_precision(
      const std::string& resolved_tenant, const ModelSlot& slot,
      TenantPrecision request_override) const;

  void worker_loop(int worker_index);
  // Runs one pipeline-stage action if any is ready, trying stages in
  // `order` (a 3-element preference array — the stage-specialization /
  // work-stealing policy); `lock` must hold mu_ and is released around the
  // action. Returns the stage that ran, kIdle when nothing was runnable.
  StageAction try_step_locked(std::unique_lock<std::mutex>& lock,
                              const StageAction* order);
  SubmitStatus submit_job(const std::shared_ptr<Job>& job);
  void deliver_response(Job& job, ServeResponse response);
  void deliver_error(Job& job, std::exception_ptr error);
  [[nodiscard]] double sched_now_s() const;

  // All of these run with mu_ held.
  [[nodiscard]] bool batch_ready_locked() const;
  [[nodiscard]] bool group_ready_locked(const PendingGroup& group) const;
  [[nodiscard]] FormedBatch form_batch_locked();
  [[nodiscard]] bool flush_conditions_locked() const;
  [[nodiscard]] std::shared_ptr<Job> pop_next_locked();

  void run_decode(const std::shared_ptr<Job>& job);
  // Forward stage: pool, reconstruct, scatter. Requests whose last patches
  // landed are pushed onto the assemble ring, NOT finished inline — that is
  // the next stage's job (and possibly another worker's).
  void run_forward(FormedBatch batch);
  // Assemble stage body (tokens -> pixels -> cache -> deliver).
  void finish_request(const std::shared_ptr<InFlight>& inflight);
  void fail_request(const std::shared_ptr<Job>& job, std::exception_ptr error);
  // Common success tail of finish_request and the coarse-rung decode path:
  // cache put, counters, latency/ladder samples, delivery, outstanding_--.
  void settle_success(const std::shared_ptr<Job>& job,
                      std::shared_ptr<const image::Image> img);

  // Builds a ModelSlot (precision resolution + LLC shaping) for `version`.
  [[nodiscard]] std::shared_ptr<const ModelSlot> make_slot(
      std::shared_ptr<const core::ReconstructionModel> model,
      std::uint64_t version) const;
  // Slot governing one submit: the tenant's pinned version when retained,
  // else current. Called with mu_ held.
  [[nodiscard]] std::shared_ptr<const ModelSlot> slot_for_locked(
      std::uint64_t pin_version) const;
  // Ladder decision for one submit (mu_ held): lazily builds the tenant's
  // ladder, feeds it `now` + the tenant's oldest queued wait, applies any
  // forced_rung override, and emits the transition trace/gauge.
  [[nodiscard]] LadderRung observe_ladder_locked(
      const std::string& tenant, const TenantConfig& policy,
      std::uint64_t request_id);

  // Hot-path metric handles, resolved once at construction so workers never
  // touch the registry's name map (one relaxed atomic add per event).
  struct HotMetrics {
    explicit HotMetrics(obs::Registry& r)
        : submitted(r.counter("serve.submitted")),
          completed(r.counter("serve.completed")),
          failed(r.counter("serve.failed")),
          requests_failed(r.counter("serve.requests.failed")),
          callback_errors(r.counter("serve.callback_errors")),
          cache_hits(r.counter("serve.cache_hits")),
          cache_misses(r.counter("serve.cache_misses")),
          shed_queue_full(r.counter("serve.shed.queue_full")),
          shed_rate_limited(r.counter("serve.shed.rate_limited")),
          shed_quota(r.counter("serve.shed.quota")),
          shed_overloaded(r.counter("serve.shed.overloaded")),
          batches(r.counter("serve.batches")),
          batched_patches(r.counter("serve.batched_patches")),
          queue_depth(r.gauge("serve.queue_depth")),
          model_version(r.gauge("model.version")),
          ladder_rung(r.gauge("ladder.rung")) {}
    obs::Counter& submitted;
    obs::Counter& completed;
    obs::Counter& failed;
    // serve.failed predates this name and stays for dashboard compat;
    // serve.requests.failed is the documented failure counter (always
    // bumped together — DESIGN.md §10).
    obs::Counter& requests_failed;
    obs::Counter& callback_errors;  // throwing ResponseCallbacks, contained
    obs::Counter& cache_hits;
    obs::Counter& cache_misses;
    obs::Counter& shed_queue_full;
    obs::Counter& shed_rate_limited;
    obs::Counter& shed_quota;
    obs::Counter& shed_overloaded;  // ladder shed-rung rejections
    obs::Counter& batches;
    obs::Counter& batched_patches;
    obs::Gauge& queue_depth;
    obs::Gauge& model_version;  // current deployed version (1-based)
    obs::Gauge& ladder_rung;    // most recent rung decision, any tenant
  };

  const ServerConfig config_;
  const core::ReconstructionModel& model_;  // construction-time model (v1)
  const core::PatchifyConfig patchify_;     // fixed across deploys
  ResultCache cache_;
  TenantRegistry tenants_;
  obs::Registry obs_;
  obs::TraceRing trace_;
  HotMetrics hot_;  // must follow obs_ (references into it)
  util::Stopwatch uptime_;  // default scheduler clock base

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers: new job / ready batch / stop
  std::condition_variable space_cv_;  // submitters: some tenant queue has room
  std::condition_variable idle_cv_;   // drain(): outstanding hit zero
  std::unordered_map<std::string, TenantQueue> queues_;  // key: resolved tenant
  std::deque<std::string> rr_;  // WDRR ring: tenants with queued jobs
  int queued_ = 0;              // total jobs across tenant queues
  std::unordered_map<std::string, PendingGroup> pending_;  // key: mask bytes
  std::unordered_map<std::string, codec::ImageCodec*> codecs_;
  std::map<std::string, TenantLocal> tenant_local_;
  int decoding_ = 0;     // workers currently inside run_decode
  int outstanding_ = 0;  // accepted but not yet completed/failed
  int max_queue_depth_ = 0;
  bool stopping_ = false;

  // Versioned model slots (guarded by mu_). current_slot_ serves new
  // non-pinned submits; retained_ additionally keeps superseded versions
  // alive while a tenant pins them. Jobs hold their own shared_ptr copies,
  // so pruning here never invalidates in-flight work.
  std::shared_ptr<const ModelSlot> current_slot_;
  std::map<std::uint64_t, std::shared_ptr<const ModelSlot>> retained_;
  std::uint64_t next_version_ = 1;
  std::uint64_t deploys_ = 0;

  // Forward -> assemble inter-stage ring (guarded by mu_): requests whose
  // last patches were scattered, waiting for an assemble-stage action.
  // Bounded at pipeline_depth x max(1, workers) requests — a forward only
  // LAUNCHES while the ring has room (one batch may overshoot by its own
  // rider count), which backpressures the ALU stages when assembly lags
  // instead of letting finished token tensors pile up unboundedly.
  std::deque<std::shared_ptr<InFlight>> assemble_ring_;
  std::size_t assemble_ring_capacity_ = 1;
  std::uint64_t ring_full_stalls_ = 0;  // forwards skipped on a full ring

  // LLC budget the batch shaper used (per-slot shaped budgets live in the
  // ModelSlot — footprints differ across deployed versions).
  std::size_t llc_budget_ = 0;

  // Per-stage pipeline telemetry (guarded by mu_): how many actions each
  // stage ran and how long the pool spent inside them — occupancy =
  // busy_s / (workers x wall) is the bench's pipeline-health headline.
  std::uint64_t stage_actions_[3] = {0, 0, 0};  // decode, forward, assemble
  double stage_busy_s_[3] = {0.0, 0.0, 0.0};

  // Counters (guarded by mu_; read via stats()).
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t shed_overloaded_ = 0;  // of rejected_: ladder shed rung
  std::uint64_t failed_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t batched_patches_ = 0;
  std::uint64_t cross_request_batches_ = 0;
  std::uint64_t batches_int8_ = 0;  // of batches_, forwards run at int8
  std::uint64_t codec_pixels_ = 0;

  struct Stages {
    StageStats queue_wait, decode, codec_decode, batch_wait, reconstruct,
        reconstruct_int8, assemble, total;
  };
  Stages stages_;
  // Assemble-ring depth sampled after every forward-stage push (unit:
  // requests, not seconds). p95 pinned near capacity means assembly is the
  // bottleneck; near zero means the pipeline never filled.
  StageStats ring_depth_;

  std::vector<std::thread> workers_;
};

}  // namespace easz::serve
