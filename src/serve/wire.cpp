#include "serve/wire.hpp"

#include <cstring>

#include "serve/cache.hpp"

namespace easz::serve::wire {
namespace {

// The 16M px/side bound mirrors core::parse_container's: far past any real
// image, well before `width * height * channels * 4` can overflow size_t.
constexpr int kMaxSide = 1 << 24;
constexpr std::size_t kMaxNameBytes = 128;  // tenant / codec identifiers

void push16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFU));
  out.push_back(static_cast<std::uint8_t>((v >> 8U) & 0xFFU));
}

void push32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
  }
}

void push64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
  }
}

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t read8() {
    check(1);
    return bytes_[pos_++];
  }
  std::uint16_t read16() {
    check(2);
    const std::uint16_t v =
        static_cast<std::uint16_t>(bytes_[pos_] | (bytes_[pos_ + 1] << 8U));
    pos_ += 2;
    return v;
  }
  std::uint32_t read32() {
    check(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
  }
  std::uint64_t read64() {
    std::uint64_t v = read32();
    return v | (static_cast<std::uint64_t>(read32()) << 32U);
  }
  std::vector<std::uint8_t> read_blob(std::size_t n) {
    check(n);
    std::vector<std::uint8_t> out(
        bytes_.begin() + static_cast<std::ptrdiff_t>(pos_),
        bytes_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string read_string(std::size_t max_bytes) {
    const std::uint32_t n = read32();
    if (n > max_bytes) throw WireError("wire: string field too long");
    const auto blob = read_blob(n);
    return std::string(blob.begin(), blob.end());
  }
  [[nodiscard]] bool at_end() const { return pos_ == bytes_.size(); }

 private:
  void check(std::size_t n) const {
    if (pos_ + n > bytes_.size()) throw WireError("wire: truncated frame");
  }
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

void push_string(std::vector<std::uint8_t>& out, const std::string& s) {
  push32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

std::vector<std::uint8_t> finish_frame(std::vector<std::uint8_t> body) {
  std::vector<std::uint8_t> out;
  out.reserve(kLengthPrefixBytes + body.size());
  push32(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Reader open_body(const std::vector<std::uint8_t>& body, FrameKind expect) {
  Reader r(body);
  if (r.read32() != kMagic) throw WireError("wire: bad magic");
  const std::uint8_t kind = r.read8();
  if (kind != static_cast<std::uint8_t>(expect)) {
    throw WireError("wire: unexpected frame kind");
  }
  return r;
}

}  // namespace

ServeRequest WireRequest::to_serve_request() const {
  ServeRequest out;
  out.compressed = compressed;
  out.codec = codec;
  out.tenant = tenant;
  switch (precision) {
    case WirePrecision::kDefault: out.precision = TenantPrecision::kInherit;
      break;
    case WirePrecision::kFp32: out.precision = TenantPrecision::kFp32; break;
    case WirePrecision::kInt8: out.precision = TenantPrecision::kInt8; break;
  }
  return out;
}

image::Image WireResponse::to_image() const {
  if (status != ResponseStatus::kOk) {
    throw WireError("wire: to_image on a non-ok response");
  }
  image::Image img(width, height, channels);
  std::memcpy(img.data().data(), pixels.data(), pixels.size());
  return img;
}

WireResponse make_ok_response(const ServeResponse& response) {
  WireResponse out;
  out.status = ResponseStatus::kOk;
  out.cache_hit = response.cache_hit ? 1 : 0;
  out.rung = static_cast<std::uint8_t>(response.rung);
  out.request_id = response.request_id;
  out.model_version = response.model_version;
  const image::Image& img = *response.image;
  out.width = img.width();
  out.height = img.height();
  out.channels = img.channels();
  out.pixels.resize(img.data().size() * sizeof(float));
  static_assert(sizeof(float) == 4, "wire format assumes 32-bit floats");
  std::memcpy(out.pixels.data(), img.data().data(), out.pixels.size());
  return out;
}

WireResponse make_shed_response(SubmitStatus status,
                                std::uint64_t request_id) {
  WireResponse out;
  out.status = ResponseStatus::kShed;
  out.submit_status = static_cast<std::uint8_t>(status);
  out.request_id = request_id;
  return out;
}

WireResponse make_failed_response(const std::string& error,
                                  std::uint64_t request_id) {
  WireResponse out;
  out.status = ResponseStatus::kFailed;
  out.request_id = request_id;
  out.error = error;
  return out;
}

std::vector<std::uint8_t> encode_request(const WireRequest& request) {
  std::vector<std::uint8_t> body;
  push32(body, kMagic);
  body.push_back(static_cast<std::uint8_t>(FrameKind::kRequest));
  push64(body, request.client_tag);
  push_string(body, request.tenant);
  body.push_back(static_cast<std::uint8_t>(request.precision));
  push_string(body, request.codec);

  const core::EaszCompressed& c = request.compressed;
  push32(body, static_cast<std::uint32_t>(c.full_width));
  push32(body, static_cast<std::uint32_t>(c.full_height));
  push32(body, static_cast<std::uint32_t>(c.padded_width));
  push32(body, static_cast<std::uint32_t>(c.padded_height));
  push16(body, static_cast<std::uint16_t>(c.erased_per_row));
  body.push_back(c.axis == core::SqueezeAxis::kVertical ? 1 : 0);
  push32(body, static_cast<std::uint32_t>(c.mask_bytes.size()));
  body.insert(body.end(), c.mask_bytes.begin(), c.mask_bytes.end());
  push32(body, static_cast<std::uint32_t>(c.payload.width));
  push32(body, static_cast<std::uint32_t>(c.payload.height));
  push16(body, static_cast<std::uint16_t>(c.payload.channels));
  push32(body, static_cast<std::uint32_t>(c.payload.bytes.size()));
  body.insert(body.end(), c.payload.bytes.begin(), c.payload.bytes.end());
  return finish_frame(std::move(body));
}

std::vector<std::uint8_t> encode_response(const WireResponse& response) {
  std::vector<std::uint8_t> body;
  push32(body, kMagic);
  body.push_back(static_cast<std::uint8_t>(FrameKind::kResponse));
  push64(body, response.client_tag);
  body.push_back(static_cast<std::uint8_t>(response.status));
  body.push_back(response.submit_status);
  body.push_back(response.cache_hit);
  body.push_back(response.rung);
  push64(body, response.request_id);
  push64(body, response.model_version);
  if (response.status == ResponseStatus::kOk) {
    push32(body, static_cast<std::uint32_t>(response.width));
    push32(body, static_cast<std::uint32_t>(response.height));
    push16(body, static_cast<std::uint16_t>(response.channels));
    push32(body, static_cast<std::uint32_t>(response.pixels.size()));
    body.insert(body.end(), response.pixels.begin(), response.pixels.end());
  } else {
    push_string(body, response.error);
  }
  return finish_frame(std::move(body));
}

FrameKind frame_kind(const std::vector<std::uint8_t>& body) {
  Reader r(body);
  if (r.read32() != kMagic) throw WireError("wire: bad magic");
  const std::uint8_t kind = r.read8();
  if (kind != static_cast<std::uint8_t>(FrameKind::kRequest) &&
      kind != static_cast<std::uint8_t>(FrameKind::kResponse)) {
    throw WireError("wire: unknown frame kind");
  }
  return static_cast<FrameKind>(kind);
}

WireRequest parse_request(const std::vector<std::uint8_t>& body) {
  Reader r = open_body(body, FrameKind::kRequest);
  WireRequest out;
  out.client_tag = r.read64();
  out.tenant = r.read_string(kMaxNameBytes);
  const std::uint8_t precision = r.read8();
  if (precision > static_cast<std::uint8_t>(WirePrecision::kInt8)) {
    throw WireError("wire: bad precision byte");
  }
  out.precision = static_cast<WirePrecision>(precision);
  out.codec = r.read_string(kMaxNameBytes);
  if (out.codec.empty()) throw WireError("wire: empty codec name");

  core::EaszCompressed& c = out.compressed;
  c.full_width = static_cast<int>(r.read32());
  c.full_height = static_cast<int>(r.read32());
  c.padded_width = static_cast<int>(r.read32());
  c.padded_height = static_cast<int>(r.read32());
  c.erased_per_row = r.read16();
  const std::uint8_t axis = r.read8();
  if (axis > 1) throw WireError("wire: bad squeeze axis");
  c.axis = axis != 0 ? core::SqueezeAxis::kVertical
                     : core::SqueezeAxis::kHorizontal;
  c.mask_bytes = r.read_blob(r.read32());
  c.payload.width = static_cast<int>(r.read32());
  c.payload.height = static_cast<int>(r.read32());
  c.payload.channels = r.read16();
  c.payload.bytes = r.read_blob(r.read32());
  if (!r.at_end()) throw WireError("wire: trailing bytes in request");

  // Plausibility bounds in the style of parse_container. The receiving
  // replica's decode re-validates everything against ITS patchify config
  // (the wire cannot know it); these checks stop garbage geometry before it
  // reaches per-request error handling.
  if (c.full_width <= 0 || c.full_height <= 0 || c.full_width > kMaxSide ||
      c.full_height > kMaxSide) {
    throw WireError("wire: implausible image geometry");
  }
  if (c.padded_width < c.full_width || c.padded_height < c.full_height ||
      c.padded_width > 2 * kMaxSide || c.padded_height > 2 * kMaxSide) {
    throw WireError("wire: implausible padded geometry");
  }
  if (c.payload.width <= 0 || c.payload.height <= 0 ||
      c.payload.width > c.padded_width ||
      c.payload.height > c.padded_height) {
    throw WireError("wire: implausible payload geometry");
  }
  if (c.payload.channels < 1 || c.payload.channels > 4) {
    throw WireError("wire: implausible channel count");
  }
  return out;
}

WireResponse parse_response(const std::vector<std::uint8_t>& body) {
  Reader r = open_body(body, FrameKind::kResponse);
  WireResponse out;
  out.client_tag = r.read64();
  const std::uint8_t status = r.read8();
  if (status > static_cast<std::uint8_t>(ResponseStatus::kFailed)) {
    throw WireError("wire: bad response status");
  }
  out.status = static_cast<ResponseStatus>(status);
  out.submit_status = r.read8();
  if (out.submit_status >
      static_cast<std::uint8_t>(SubmitStatus::kOverloaded)) {
    throw WireError("wire: bad submit status byte");
  }
  out.cache_hit = r.read8();
  if (out.cache_hit > 1) throw WireError("wire: bad cache_hit byte");
  out.rung = r.read8();
  if (out.rung > 4) throw WireError("wire: bad rung byte");
  out.request_id = r.read64();
  out.model_version = r.read64();
  if (out.status == ResponseStatus::kOk) {
    out.width = static_cast<int>(r.read32());
    out.height = static_cast<int>(r.read32());
    out.channels = r.read16();
    if (out.width <= 0 || out.height <= 0 || out.width > kMaxSide ||
        out.height > kMaxSide) {
      throw WireError("wire: implausible response geometry");
    }
    if (out.channels != 1 && out.channels != 3) {
      throw WireError("wire: implausible response channel count");
    }
    const std::uint32_t pixel_bytes = r.read32();
    const std::size_t expected = static_cast<std::size_t>(out.width) *
                                 static_cast<std::size_t>(out.height) *
                                 static_cast<std::size_t>(out.channels) *
                                 sizeof(float);
    if (pixel_bytes != expected) {
      throw WireError("wire: pixel byte count does not match geometry");
    }
    out.pixels = r.read_blob(pixel_bytes);
  } else {
    out.error = r.read_string(body.size());
  }
  if (!r.at_end()) throw WireError("wire: trailing bytes in response");
  return out;
}

std::uint64_t routing_hash(const WireRequest& request) {
  // Mirror of serve::make_cache_key + the precision override: every field
  // that determines the replica's cached output bytes feeds the hash, so
  // byte-identical resends route identically (the cache-affinity contract)
  // and differing geometry/precision spreads across the ring.
  const core::EaszCompressed& c = request.compressed;
  std::uint64_t h = fnv1a64(c.payload.bytes.data(), c.payload.bytes.size());
  h = fnv1a64(c.mask_bytes.data(), c.mask_bytes.size(), h);
  h = fnv1a64(reinterpret_cast<const std::uint8_t*>(request.codec.data()),
              request.codec.size(), h);
  const std::uint32_t geom[8] = {
      static_cast<std::uint32_t>(c.full_width),
      static_cast<std::uint32_t>(c.full_height),
      static_cast<std::uint32_t>(c.padded_width),
      static_cast<std::uint32_t>(c.padded_height),
      static_cast<std::uint32_t>(c.erased_per_row),
      static_cast<std::uint32_t>(c.axis == core::SqueezeAxis::kVertical),
      static_cast<std::uint32_t>(c.payload.channels),
      static_cast<std::uint32_t>(request.precision)};
  return fnv1a64(reinterpret_cast<const std::uint8_t*>(geom), sizeof(geom),
                 h);
}

void Deframer::feed(const std::uint8_t* data, std::size_t n) {
  // Compact once the consumed prefix dominates, so a long-lived connection
  // does not grow its buffer without bound.
  if (pos_ > 4096 && pos_ > buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

std::optional<std::vector<std::uint8_t>> Deframer::next() {
  if (buf_.size() - pos_ < kLengthPrefixBytes) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
  }
  if (len > max_frame_bytes_) {
    throw WireError("wire: frame length " + std::to_string(len) +
                    " exceeds limit " + std::to_string(max_frame_bytes_));
  }
  if (buf_.size() - pos_ - kLengthPrefixBytes < len) return std::nullopt;
  const auto begin =
      buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + kLengthPrefixBytes);
  std::vector<std::uint8_t> body(begin, begin + len);
  pos_ += kLengthPrefixBytes + len;
  if (pos_ == buf_.size()) {
    buf_.clear();
    pos_ = 0;
  }
  return body;
}

}  // namespace easz::serve::wire
