// Multi-tenant admission control for the reconstruction server.
//
// The paper's asymmetric deployment puts one server in front of many
// heterogeneous edge fleets; a wildlife-camera fleet and an industrial
// inspection line are different TENANTS of the same reconstruction
// capacity, and a flooding fleet must not be able to crowd out the rest.
// The registry holds per-tenant policy and enforces it at submit() time:
//
//   weight        relative share of worker dequeue bandwidth (WDRR in
//                 ReconServer, DESIGN.md §6.2) — a 3:1 weight pair splits
//                 a saturated server's throughput 3:1
//   rate + burst  token-bucket admission: sustained requests/s plus a
//                 burst allowance; beyond it submits are shed as
//                 kRateLimited before they touch the queue
//   max_inflight  cap on accepted-but-unsettled requests, bounding the
//                 queue + batch-pool memory any one tenant can pin
//
// Requests naming an unregistered (or empty) tenant resolve to a built-in
// "default" tenant with weight 1 and no limits, so single-tenant callers
// never have to think about any of this.
//
// Time is read through an injectable ClockFn so the deterministic test
// harness (tests/serve_sched_test.cpp) can drive bucket refill with a
// virtual clock; the default is a monotonic wall clock.
#pragma once

#include <cstdint>
#include <chrono>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace easz::serve {

/// Monotonic seconds source. Scheduling decisions (bucket refill, batch
/// aging) go through this hook; wall-clock *telemetry* does not.
using ClockFn = std::function<double()>;

/// Per-tenant numeric-path override: kInherit rides the server's configured
/// precision; kFp32/kInt8 pin this tenant's reconstructions regardless of
/// it. Batches never mix precisions (the batch pool keys on it), and the
/// result cache keys on it too, so a tenant's bytes are a function of its
/// own precision only.
enum class TenantPrecision { kInherit, kFp32, kInt8 };

struct TenantConfig {
  std::string name;
  int weight = 1;           ///< WDRR share; must be >= 1
  double rate_per_s = 0.0;  ///< sustained admission rate; <= 0 = unlimited
  double burst = 0.0;       ///< bucket capacity; <= 0 defaults to max(rate, 1)
  int max_inflight = 0;     ///< accepted-but-unsettled cap; 0 = unlimited
  TenantPrecision precision = TenantPrecision::kInherit;
  /// p95 latency SLO (sched-clock seconds) driving this tenant's
  /// degradation ladder (serve/ladder.hpp). <= 0 inherits the server's
  /// ServerConfig::ladder default (which itself may be disabled).
  double slo_p95_s = 0.0;
  /// Ops override: pin this tenant to a fixed ladder rung (0 = full .. 4 =
  /// shed; values are LadderRung). -1 lets the SLO-driven walk decide.
  /// Forcing a rung is the manual brownout switch — it bypasses the state
  /// machine entirely, it does not seed it.
  int forced_rung = -1;
  /// Pin this tenant's requests to one deployed model version (DESIGN.md
  /// §10). 0 follows the current version. A pinned version stays retained
  /// across deploys as long as the pin exists; pinning a version that was
  /// already pruned falls back to current.
  std::uint64_t pin_version = 0;
};

enum class Admission {
  kAdmitted,
  kRateLimited,    ///< token bucket empty
  kQuotaExceeded,  ///< max_inflight reached
};

/// Admission-side view of one tenant at snapshot time.
struct TenantAdmissionStats {
  std::string name;
  int weight = 1;
  TenantPrecision precision = TenantPrecision::kInherit;
  std::uint64_t admitted = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t quota_rejected = 0;
  int inflight = 0;
};

/// Thread-safe tenant table. Never holds the server mutex; the server may
/// call into it while locked (weight lookups) but not vice versa.
class TenantRegistry {
 public:
  static constexpr const char* kDefaultTenant = "default";

  /// `clock` overrides the bucket-refill time source (tests); empty uses a
  /// monotonic wall clock anchored at construction.
  explicit TenantRegistry(ClockFn clock = {});

  /// Inserts or replaces a tenant. Replacing kDefaultTenant customises the
  /// policy applied to unregistered tenant names. Throws on weight < 1, on
  /// names that are not 1-64 chars of [A-Za-z0-9_.-] (names flow verbatim
  /// into JSON reports, so they must be identifiers), and on a kInt8
  /// precision pin when int8 serving is unavailable (see allow_int8) — a
  /// misconfigured tenant must fail at configuration time, not turn every
  /// later submit into a throw.
  void add(TenantConfig config);

  /// Declares whether kInt8 precision pins are satisfiable (the owning
  /// server sets this from the deployed model's quantization state before
  /// registering any tenant). Defaults to true for standalone use.
  void allow_int8(bool allowed);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Maps a request's tenant field to the tenant that governs it:
  /// the registered name, else kDefaultTenant.
  [[nodiscard]] std::string resolve(const std::string& name) const;

  /// WDRR weight of a RESOLVED tenant name.
  [[nodiscard]] int weight(const std::string& resolved) const;

  /// Precision override of a RESOLVED tenant name (kInherit when the
  /// tenant does not pin one).
  [[nodiscard]] TenantPrecision precision_of(const std::string& resolved) const;

  /// Full policy of a RESOLVED tenant name, by value (one lock acquisition
  /// for the submit path, which needs slo/forced_rung/pin_version at once).
  [[nodiscard]] TenantConfig config_of(const std::string& resolved) const;

  /// True when any registered tenant pins kInt8 precision (deploying an
  /// unquantized model must fail while such a pin exists).
  [[nodiscard]] bool has_int8_pin() const;

  /// All nonzero pin_version values across tenants (deploys retain these).
  [[nodiscard]] std::vector<std::uint64_t> pinned_versions() const;

  /// Rate/quota check for one request of a RESOLVED tenant. kAdmitted
  /// consumes one bucket token and holds one inflight slot until release().
  /// `weight_out` (optional) receives the tenant's WDRR weight in the same
  /// lock acquisition, sparing the submit hot path a second one.
  Admission try_admit(const std::string& resolved, int* weight_out = nullptr);

  /// Returns the inflight slot of one settled (completed/failed) request.
  void release(const std::string& resolved);

  /// Undoes a try_admit for a request that never entered the pipeline
  /// (e.g. shed at the queue-full check): returns the inflight slot AND
  /// refunds the bucket token, so a full queue cannot drain the rate
  /// limiter with requests that did no work.
  void cancel_admission(const std::string& resolved);

  /// Settles a request that was admitted, ran, and FAILED: returns the
  /// inflight slot and refunds the bucket token (the tenant received no
  /// service for it — a server-side fault must not also eat into the
  /// tenant's rate budget), but KEEPS the `admitted` counter, unlike
  /// cancel_admission: the request did enter the pipeline and consumed
  /// capacity, and stats must say so. Trade-off, documented in DESIGN.md
  /// §10: a tenant submitting only poison requests is throttled by its
  /// max_inflight quota, not its rate.
  void release_failed(const std::string& resolved);

  /// All tenants in name order (deterministic for reports).
  [[nodiscard]] std::vector<TenantAdmissionStats> snapshot() const;

 private:
  struct State {
    TenantConfig config;
    double tokens = 0.0;
    double last_refill_s = 0.0;
    bool bucket_primed = false;  // tokens start at burst on first use
    int inflight = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rate_limited = 0;
    std::uint64_t quota_rejected = 0;
  };

  [[nodiscard]] double now_s() const;
  [[nodiscard]] static double burst_of(const TenantConfig& config);

  mutable std::mutex mu_;
  ClockFn clock_;
  std::chrono::steady_clock::time_point t0_;
  bool int8_allowed_ = true;
  std::map<std::string, State> tenants_;  // ordered: stable snapshots
};

}  // namespace easz::serve
