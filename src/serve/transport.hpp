// TCP front-end for the reconstruction server (DESIGN.md §11).
//
// The transport is a LAYER over ReconServer, not a rewrite: every frame
// that parses rides the existing submit_async() open-loop path, so
// admission, WDRR scheduling, the staged pipeline, the ladder and the
// failure funnel all apply to socket traffic exactly as to in-process
// submits — and the deterministic harness (workers=0 + step()) keeps
// working untouched underneath.
//
// One epoll thread owns all sockets (DESIGN.md §11.2 has the state
// machine):
//
//   accept   non-blocking accept4, TCP_NODELAY, EPOLLIN armed
//   read     drain until EAGAIN into the connection's wire::Deframer;
//            each complete frame is handed to the FrameHandler (which for
//            ServeTransport parses it and calls submit_async)
//   write    responses are enqueued from WORKER threads via the
//            connection's thread-safe Sender (an eventfd wakes the loop);
//            the loop flushes each connection's write queue until EAGAIN,
//            keeping a byte offset into the front frame — partial writes
//            resume exactly where they stopped
//   close    EOF/error/oversize-frame tears the connection down; its
//            Sender is marked dead, so late worker callbacks drop their
//            response (counted) instead of touching a stale fd. The
//            REQUEST still settles in the server — the PR-8 funnel
//            releases the inflight slot, refunds the rate token and frees
//            the pinned model slot whether or not anyone is listening.
//
// Backpressure: reads are suspended (EPOLLIN disarmed) while any of
//   - pipelined inflight frames >= max_pipelined,
//   - the write backlog >= max_write_backlog bytes,
//   - the tenant shed the connection's latest submit and the shed
//     response has not yet flushed (mark_shedding),
// holds, and resume when all clear. A flooding client therefore fills its
// own socket buffer and stalls, instead of pumping frames into a tenant
// that is already rejecting them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "serve/wire.hpp"

namespace easz::serve {

class ReconServer;

struct TransportConfig {
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the actual one back via port().
  int port = 0;
  int max_connections = 256;
  std::size_t max_frame_bytes = wire::kMaxFrameBytes;
  /// Frames handed to the handler but not yet answered, per connection,
  /// before reads suspend.
  int max_pipelined = 64;
  /// Unflushed response bytes per connection before reads suspend.
  std::size_t max_write_backlog = 8ULL << 20;
};

/// Generic epoll frame server: deframes length-prefixed frames off every
/// connection and hands the bodies to one handler. ServeTransport binds it
/// to a ReconServer; the replica router reuses it unchanged for its own
/// front door.
class TcpEndpoint {
 public:
  /// Thread-safe response channel of ONE connection. Worker callbacks hold
  /// it as shared_ptr; after the connection dies send() returns false and
  /// the frame is dropped (callers count it).
  class Sender {
   public:
    /// Enqueues one fully-encoded frame for write (any thread). `shed`
    /// additionally marks the connection as shedding, which keeps reads
    /// suspended until the write queue fully drains. Returns false when
    /// the connection is gone — the frame was not (and will never be)
    /// sent.
    bool send(std::vector<std::uint8_t> frame, bool shed = false);

   private:
    friend class TcpEndpoint;
    std::mutex mu_;
    TcpEndpoint* endpoint_ = nullptr;  // null once dead
    std::uint64_t conn_id_ = 0;
  };

  /// Called on the epoll thread with each deframed frame BODY. Must not
  /// block (hand work to submit_async / a pool); may call reply->send()
  /// inline.
  using FrameHandler = std::function<void(
      std::vector<std::uint8_t> body,
      const std::shared_ptr<Sender>& reply)>;

  /// Binds and starts the epoll thread. Metrics land in `registry` under
  /// `metric_prefix` (.connections gauge, .accepted/.closed/.rx_frames/
  /// .tx_frames/.rx_bytes/.tx_bytes/.dropped_responses/.read_suspensions
  /// counters). Throws std::runtime_error when the socket cannot bind.
  TcpEndpoint(TransportConfig config, FrameHandler handler,
              obs::Registry& registry, const std::string& metric_prefix);
  ~TcpEndpoint();

  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  /// Port actually bound (== config.port unless that was 0).
  [[nodiscard]] int port() const { return port_; }

  /// Stops accepting, closes every connection, joins the epoll thread.
  /// Safe to call twice. Pending worker callbacks observe dead Senders.
  void stop();

 private:
  struct Conn;
  struct Outbox;
  struct Impl;

  void loop();

  TransportConfig config_;
  FrameHandler handler_;
  int port_ = 0;
  std::unique_ptr<Impl> impl_;
};

/// The serving tier's front door: TcpEndpoint bound to ReconServer. Parsed
/// requests ride submit_async; parse failures answer with a kFailed
/// response on the still-framed connection (and count
/// <prefix>.parse_errors); shed submits answer immediately with the
/// SubmitStatus reason and engage read backpressure.
class ServeTransport {
 public:
  /// Starts serving immediately. The server must outlive this object, and
  /// stop() must be called (or the transport destroyed) before the server
  /// is torn down. Metrics land in server.obs() under "transport".
  ServeTransport(ReconServer& server, TransportConfig config);
  ~ServeTransport();

  [[nodiscard]] int port() const { return endpoint_->port(); }
  void stop() { endpoint_->stop(); }

 private:
  void on_frame(std::vector<std::uint8_t> body,
                const std::shared_ptr<TcpEndpoint::Sender>& reply);

  ReconServer& server_;
  obs::Counter& parse_errors_;
  obs::Counter& dropped_responses_;
  std::unique_ptr<TcpEndpoint> endpoint_;
};

/// Blocking client of the wire protocol: the socket loadgen's per-client
/// connection, the router's replica legs and the tests' loopback probe.
/// One instance is NOT thread-safe; use one per thread.
class WireClient {
 public:
  WireClient() = default;
  ~WireClient() { close(); }
  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  /// Connects, retrying until `timeout_s` (a replica may still be binding
  /// when its clients start — CI races otherwise). Throws on timeout.
  void connect(const std::string& host, int port, double timeout_s = 5.0);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void close();

  /// Blocking full-frame write (throws on a broken connection).
  void send_request(const wire::WireRequest& request);
  /// Same, for an already-encoded frame (the router re-tags and forwards
  /// without re-encoding twice).
  void send_frame(const std::vector<std::uint8_t>& frame);
  /// Blocking read of the next response frame (throws WireError on corrupt
  /// bytes, runtime_error on timeout/EOF).
  wire::WireResponse recv_response(double timeout_s = 60.0);
  /// Like recv_response but returns nullopt on timeout instead of throwing
  /// — the router's receiver threads poll this so a quiet replica is not an
  /// error. Still throws on EOF/corrupt bytes.
  std::optional<wire::WireResponse> poll_response(double timeout_s);
  /// send + recv; the classic closed-loop client step.
  wire::WireResponse roundtrip(const wire::WireRequest& request);

  /// Raw fd (tests: shutdown()/close() mid-flight for disconnect paths).
  [[nodiscard]] int fd() const { return fd_; }

 private:
  int fd_ = -1;
  wire::Deframer deframer_;
};

}  // namespace easz::serve
