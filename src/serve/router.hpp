// Consistent-hash replica router (DESIGN.md §11.3).
//
// One easz_router fronts N easz_serve --listen replicas. Client frames
// arrive on the router's own TcpEndpoint; each request is hashed with
// wire::routing_hash — a stable 64-bit digest over exactly the fields of
// the replica's result-cache key (payload, mask, codec, geometry,
// precision) — and forwarded to the replica that owns that point on a
// consistent-hash ring. Identical uploads therefore always land on the
// replica whose result cache already holds them: the fleet's aggregate
// cache behaves like one cache sharded by key instead of N caches each
// cold for (N-1)/N of the traffic. Adding or removing a replica remaps
// only ~1/N of the key space (the classic ring property), so a fleet
// resize does not flush every shard.
//
// Plumbing per replica ("leg"): one WireClient shared by a send thread
// (drains a bounded queue of re-tagged request frames) and a receive
// thread (polls responses, matches them to waiting client connections by
// the router-assigned tag, restores the client's original tag). Responses
// complete in replica-settle order; the tag demux is what makes that safe.
// A leg that loses its replica fails its pending and queued requests with
// kFailed responses (clients see an error, never a hang) and subsequent
// requests hashed to it fail fast until the leg reconnects.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "serve/transport.hpp"

namespace easz::serve {

/// Consistent-hash ring over replica indices. `vnodes` virtual points per
/// replica smooth the key-space split (64 vnodes keeps the max/min load
/// ratio within ~30% for small fleets). Deterministic: the ring depends
/// only on (replica_count, vnodes), so every router instance — and the
/// affinity test — agrees on placement.
class HashRing {
 public:
  HashRing(std::size_t replica_count, int vnodes = 64);

  /// Replica owning `key`: the first ring point clockwise from it.
  [[nodiscard]] std::size_t lookup(std::uint64_t key) const;
  [[nodiscard]] std::size_t replica_count() const { return replica_count_; }

 private:
  std::size_t replica_count_;
  // (ring point, replica index), sorted by point.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> ring_;
};

struct RouterConfig {
  /// Front-door listener (host/port/limits) for client connections.
  TransportConfig front;
  /// Replica endpoints, index order = ring identity.
  struct Replica {
    std::string host;
    int port = 0;
  };
  std::vector<Replica> replicas;
  int vnodes = 64;
  /// How long each leg retries its initial connect (replicas may still be
  /// binding when the router starts).
  double connect_timeout_s = 10.0;
  /// Request frames queued per leg before new arrivals fail fast.
  std::size_t max_leg_queue = 1024;
};

/// Per-replica forwarding stats for stats_json() / tests.
struct ReplicaStats {
  std::uint64_t forwarded = 0;  ///< requests routed to this replica
  std::uint64_t responses = 0;  ///< responses relayed back to clients
  std::uint64_t shed = 0;       ///< of those, kShed
  std::uint64_t failed = 0;     ///< failed locally (leg down, queue full)
  obs::HistogramSnapshot latency;  ///< forward→response, seconds
};

class ReplicaRouter {
 public:
  /// Connects every leg (throws std::runtime_error when a replica cannot
  /// be reached within connect_timeout_s) and opens the front door.
  explicit ReplicaRouter(RouterConfig config);
  ~ReplicaRouter();

  ReplicaRouter(const ReplicaRouter&) = delete;
  ReplicaRouter& operator=(const ReplicaRouter&) = delete;

  /// Front-door port actually bound.
  [[nodiscard]] int port() const;

  /// Ring placement for a key — exposed so tests can assert affinity
  /// without sniffing traffic.
  [[nodiscard]] std::size_t replica_for(std::uint64_t routing_key) const;

  [[nodiscard]] ReplicaStats replica_stats(std::size_t index) const;

  /// {"replicas":[{index,host,port,forwarded,responses,shed,failed,
  /// p50_s,p95_s},...], "front":{...counters...}} — the JSON easz_router
  /// emits on --stats-every and at exit.
  [[nodiscard]] std::string stats_json() const;

  [[nodiscard]] obs::Registry& obs() { return registry_; }

  /// Closes the front door first (no new requests), then drains and joins
  /// every leg, failing whatever is still pending. Safe to call twice.
  void stop();

 private:
  struct Leg;

  void on_frame(std::vector<std::uint8_t> body,
                const std::shared_ptr<TcpEndpoint::Sender>& reply);

  RouterConfig config_;
  HashRing ring_;
  obs::Registry registry_;
  obs::Counter& parse_errors_;
  obs::Counter& dropped_responses_;
  std::vector<std::unique_ptr<Leg>> legs_;
  std::unique_ptr<TcpEndpoint> front_;
};

}  // namespace easz::serve
