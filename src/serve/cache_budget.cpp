#include "serve/cache_budget.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace easz::serve {

namespace {

// Parses sysfs cache sizes of the form "8192K" / "16M" / "262144".
std::size_t parse_cache_size(const char* text) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text) return 0;
  switch (*end) {
    case 'K':
    case 'k':
      return static_cast<std::size_t>(value) << 10;
    case 'M':
    case 'm':
      return static_cast<std::size_t>(value) << 20;
    case 'G':
    case 'g':
      return static_cast<std::size_t>(value) << 30;
    default:
      return static_cast<std::size_t>(value);
  }
}

std::size_t read_small_file(const std::string& path, char* buf,
                            std::size_t cap) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return 0;
  const std::size_t n = std::fread(buf, 1, cap - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  return n;
}

}  // namespace

CacheBudget::CacheBudget(ModelFootprint footprint, std::size_t llc_bytes)
    : footprint_(footprint),
      llc_bytes_(llc_bytes == 0 ? kDefaultLlcBytes : llc_bytes) {}

std::size_t CacheBudget::detect_llc_bytes_in(const std::string& cache_dir) {
  // Walk the cache indices and keep the largest Unified cache of level
  // >= 3 — index numbering is not guaranteed to put L3 at index3 on every
  // topology. The level gate is the whole point: L2 is also "Unified", so
  // without it a host exposing only per-core L2 (VMs, containers) would
  // report that private cache as the shared LLC. A missing `level` file
  // disqualifies the index: better to fall back to the documented default
  // than to trust a cache we cannot place in the hierarchy.
  char buf[64];
  std::size_t best = 0;
  for (int index = 0; index < 8; ++index) {
    const std::string base = cache_dir + "/index" + std::to_string(index);
    if (read_small_file(base + "/type", buf, sizeof(buf)) == 0) continue;
    if (std::strncmp(buf, "Unified", 7) != 0) continue;
    if (read_small_file(base + "/level", buf, sizeof(buf)) == 0) continue;
    if (std::strtol(buf, nullptr, 10) < 3) continue;
    if (read_small_file(base + "/size", buf, sizeof(buf)) == 0) continue;
    best = std::max(best, parse_cache_size(buf));
  }
  return best;
}

std::size_t CacheBudget::detect_llc_bytes() {
#if defined(__linux__)
  const std::size_t sysfs =
      detect_llc_bytes_in("/sys/devices/system/cpu/cpu0/cache");
  if (sysfs > 0) return sysfs;
#endif
#if defined(_SC_LEVEL3_CACHE_SIZE)
  const long l3 = sysconf(_SC_LEVEL3_CACHE_SIZE);
  if (l3 > 0) return static_cast<std::size_t>(l3);
#endif
  // Deliberately no _SC_LEVEL2_CACHE_SIZE fallback: per-core L2 is not a
  // shared LLC, and treating it as one shapes batches pathologically
  // small. Hosts with no detectable L3 get kDefaultLlcBytes instead.
  return 0;
}

ModelFootprint CacheBudget::footprint_of(const core::ReconModelConfig& cfg) {
  const std::size_t d = static_cast<std::size_t>(cfg.d_model);
  const std::size_t ffn = static_cast<std::size_t>(cfg.ffn_hidden);
  const std::size_t tokens = static_cast<std::size_t>(cfg.patchify.tokens());
  const std::size_t token_dim =
      static_cast<std::size_t>(cfg.patchify.token_dim(cfg.channels));
  const std::size_t blocks =
      static_cast<std::size_t>(cfg.encoder_blocks + cfg.decoder_blocks);

  // Exact parameter split (mirrors ReconstructionModel's layer list):
  // Linear weight matrices quantize to s8; biases, layernorm affines and
  // the positional embedding stay fp32 on both paths.
  const std::size_t linear_weights =
      token_dim * d +                              // embed
      blocks * (d * 3 * d + d * d +                // qkv + proj per block
                d * ffn + ffn * d) +               // fc1 + fc2 per block
      d * token_dim;                               // head
  const std::size_t fp32_rest =
      d + blocks * (3 * d + d + ffn + d) +         // biases (embed + blocks)
      token_dim +                                  // head bias
      blocks * 6 * d +                             // 3 layernorms x (γ, β)
      tokens * d;                                  // positional embedding

  ModelFootprint f;
  f.weight_bytes_fp32 = (linear_weights + fp32_rest) * sizeof(float);
  // int8: packed B tiles at 1 byte/weight plus per-output-channel dequant
  // scale and column-sum correction (one float + one int32 per column).
  const std::size_t dequant_cols =
      d +                                          // embed outputs
      blocks * (3 * d + d + ffn + d) +             // qkv/proj/fc1/fc2 outputs
      token_dim;                                   // head outputs
  f.weight_bytes_int8 =
      linear_weights + dequant_cols * 8 + fp32_rest * sizeof(float);

  // Per-patch transient set, in floats: the residual stream plus the widest
  // simultaneously-live buffers of one block (qkv expansion, attention
  // score tile, ffn hidden) and the token in/out copies at the boundary.
  // Coarse by design — it only has to be monotone in the config.
  const std::size_t act_floats =
      tokens * (4 * d + ffn + 2 * token_dim) +
      static_cast<std::size_t>(cfg.num_heads) * tokens * tokens;
  f.act_bytes_per_patch_fp32 = act_floats * sizeof(float);
  // int8 adds the u8 A-copies of the widest GEMM inputs (residual stream
  // and ffn hidden) on top of the fp32 buffers they were quantized from.
  f.act_bytes_per_patch_int8 =
      f.act_bytes_per_patch_fp32 + tokens * (d + ffn);

  // rANS slot→sym (16KB) + packed freq/cum (1KB) tables per decode stream,
  // rounded up for stream state and the codec's coefficient scratch.
  f.fixed_overhead_bytes = 32 << 10;
  return f;
}

std::size_t CacheBudget::budget_bytes() const {
  return llc_bytes_ / 100 * kLlcUtilizationPct;
}

std::size_t CacheBudget::working_set_bytes(int patches,
                                           nn::Precision precision) const {
  const bool int8 = precision == nn::Precision::kInt8;
  const std::size_t weights =
      int8 ? footprint_.weight_bytes_int8 : footprint_.weight_bytes_fp32;
  const std::size_t per_patch = int8 ? footprint_.act_bytes_per_patch_int8
                                     : footprint_.act_bytes_per_patch_fp32;
  return weights + footprint_.fixed_overhead_bytes +
         static_cast<std::size_t>(std::max(0, patches)) * per_patch;
}

int CacheBudget::shape_batch(int requested_max,
                             nn::Precision precision) const {
  requested_max = std::max(1, requested_max);
  const std::size_t budget = budget_bytes();
  const std::size_t base = working_set_bytes(0, precision);
  if (base >= budget) return 1;  // weights alone overflow: batching can't help
  const bool int8 = precision == nn::Precision::kInt8;
  const std::size_t per_patch = int8 ? footprint_.act_bytes_per_patch_int8
                                     : footprint_.act_bytes_per_patch_fp32;
  if (per_patch == 0) return requested_max;
  const std::size_t fit = (budget - base) / per_patch;
  const int shaped = static_cast<int>(
      std::min<std::size_t>(fit, static_cast<std::size_t>(requested_max)));
  return std::max(1, shaped);
}

}  // namespace easz::serve
