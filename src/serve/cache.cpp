#include "serve/cache.hpp"

namespace easz::serve {

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                      std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

CacheKey make_cache_key(const core::EaszCompressed& c,
                        const std::string& codec) {
  CacheKey k;
  k.payload_hash = fnv1a64(c.payload.bytes.data(), c.payload.bytes.size());
  k.mask_hash = fnv1a64(c.mask_bytes.data(), c.mask_bytes.size());
  k.payload_bytes = c.payload.bytes;
  k.mask_bytes = c.mask_bytes;
  k.codec = codec;
  k.full_width = c.full_width;
  k.full_height = c.full_height;
  k.padded_width = c.padded_width;
  k.padded_height = c.padded_height;
  k.erased_per_row = c.erased_per_row;
  k.axis = static_cast<int>(c.axis);
  return k;
}

std::size_t CacheKeyHash::operator()(const CacheKey& k) const {
  std::uint64_t h = k.payload_hash;
  h = h * 0x9e3779b97f4a7c15ULL + k.mask_hash;
  h = h * 0x9e3779b97f4a7c15ULL + std::hash<std::string>{}(k.codec);
  h = h * 0x9e3779b97f4a7c15ULL +
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.full_width))
           << 32 |
       static_cast<std::uint32_t>(k.full_height));
  h = h * 0x9e3779b97f4a7c15ULL +
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.padded_width))
           << 32 |
       static_cast<std::uint32_t>(k.padded_height));
  h = h * 0x9e3779b97f4a7c15ULL +
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.erased_per_row))
           << 32 |
       static_cast<std::uint32_t>(k.axis));
  return static_cast<std::size_t>(h);
}

ResultCache::ResultCache(std::size_t capacity_bytes)
    : capacity_(capacity_bytes) {}

std::shared_ptr<const image::Image> ResultCache::get(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->image;
}

void ResultCache::put(const CacheKey& key,
                      std::shared_ptr<const image::Image> img) {
  if (img == nullptr) return;
  // The key's wire bytes are held twice per entry (index_ map key and
  // Entry.key, the standard list+map LRU layout), so charge them twice to
  // keep the byte budget honest about real RAM.
  const std::size_t cost =
      cost_of(*img) + 2 * (key.payload_bytes.size() + key.mask_bytes.size());
  if (cost > capacity_) return;  // never admit what could not coexist
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    bytes_ -= it->second->cost;
    it->second->image = std::move(img);
    it->second->cost = cost;
    bytes_ += cost;
    lru_.splice(lru_.begin(), lru_, it->second);
  } else {
    lru_.push_front(Entry{key, std::move(img), cost});
    index_[key] = lru_.begin();
    bytes_ += cost;
  }
  evict_to_fit_locked();
}

void ResultCache::evict_to_fit_locked() {
  while (bytes_ > capacity_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.cost;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = index_.size();
  s.bytes = bytes_;
  return s;
}

}  // namespace easz::serve
