#include "serve/cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace easz::serve {

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size,
                      std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

CacheKey make_cache_key(const core::EaszCompressed& c,
                        const std::string& codec) {
  CacheKey k;
  k.payload_hash = fnv1a64(c.payload.bytes.data(), c.payload.bytes.size());
  k.mask_hash = fnv1a64(c.mask_bytes.data(), c.mask_bytes.size());
  k.payload_bytes = c.payload.bytes;
  k.mask_bytes = c.mask_bytes;
  k.codec = codec;
  k.full_width = c.full_width;
  k.full_height = c.full_height;
  k.padded_width = c.padded_width;
  k.padded_height = c.padded_height;
  k.erased_per_row = c.erased_per_row;
  k.axis = static_cast<int>(c.axis);
  return k;
}

std::size_t CacheKeyHash::operator()(const CacheKey& k) const {
  std::uint64_t h = k.payload_hash;
  h = h * 0x9e3779b97f4a7c15ULL + k.mask_hash;
  h = h * 0x9e3779b97f4a7c15ULL + std::hash<std::string>{}(k.codec);
  h = h * 0x9e3779b97f4a7c15ULL +
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.full_width))
           << 32 |
       static_cast<std::uint32_t>(k.full_height));
  h = h * 0x9e3779b97f4a7c15ULL +
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.padded_width))
           << 32 |
       static_cast<std::uint32_t>(k.padded_height));
  h = h * 0x9e3779b97f4a7c15ULL +
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(k.erased_per_row))
           << 32 |
       static_cast<std::uint32_t>(k.axis));
  return static_cast<std::size_t>(h);
}

ResultCache::ResultCache(std::size_t capacity_bytes, int shards)
    : capacity_(capacity_bytes) {
  if (shards < 1) {
    throw std::invalid_argument("ResultCache: need at least one shard");
  }
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_capacity_ = capacity_ / static_cast<std::size_t>(shards);
}

int ResultCache::shard_of(const CacheKey& key) const {
  // The index maps inside each shard consume the hash's low bits, so the
  // shard selector remixes (splitmix64 finalizer) and uses different bits —
  // otherwise shard-mates would also chain into the same buckets.
  std::uint64_t h = CacheKeyHash{}(key);
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return static_cast<int>(h % shards_.size());
}

std::shared_ptr<const image::Image> ResultCache::get(const CacheKey& key) {
  Shard& shard = *shards_[static_cast<std::size_t>(shard_of(key))];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh
  return it->second->image;
}

void ResultCache::put(const CacheKey& key,
                      std::shared_ptr<const image::Image> img) {
  if (img == nullptr) return;
  const std::size_t cost = cost_of(key, *img);
  if (cost > shard_capacity_) return;  // never admit what could not coexist
  Shard& shard = *shards_[static_cast<std::size_t>(shard_of(key))];
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    shard.bytes -= it->second->cost;
    it->second->image = std::move(img);
    it->second->cost = cost;
    shard.bytes += cost;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.push_front(Entry{key, std::move(img), cost});
    shard.index[key] = shard.lru.begin();
    shard.bytes += cost;
  }
  evict_to_fit_locked(shard, shard_capacity_);
}

void ResultCache::evict_to_fit_locked(Shard& shard, std::size_t budget) {
  while (shard.bytes > budget && !shard.lru.empty()) {
    const Entry& victim = shard.lru.back();
    shard.bytes -= victim.cost;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

CacheStats ResultCache::stats() const {
  CacheStats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.evictions += shard->evictions;
    s.entries += shard->index.size();
    s.bytes += shard->bytes;
  }
  return s;
}

CacheStats ResultCache::shard_stats(int shard) const {
  if (shard < 0 || shard >= shards()) {
    throw std::out_of_range("ResultCache: shard index out of range");
  }
  const Shard& s = *shards_[static_cast<std::size_t>(shard)];
  std::lock_guard<std::mutex> lock(s.mu);
  CacheStats out;
  out.hits = s.hits;
  out.misses = s.misses;
  out.evictions = s.evictions;
  out.entries = s.index.size();
  out.bytes = s.bytes;
  return out;
}

std::size_t ResultCache::recompute_bytes() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& e : shard->lru) {
      total += cost_of(e.key, *e.image);
    }
  }
  return total;
}

}  // namespace easz::serve
