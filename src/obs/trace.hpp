// Request tracing: fixed-size lock-free span ring + Chrome trace export
// (DESIGN.md §8.3).
//
// Every request is minted a process-unique id at submit; each pipeline
// stage it crosses (queue wait → codec decode → batch wait → reconstruct →
// assemble → total, or the cache-hit short circuit) records one span —
// {request id, stage, start, duration, recording thread} — into a ring of
// atomic slots. Recording is a relaxed fetch_add for the slot ticket plus
// five relaxed atomic stores; the ring holds the most recent `capacity`
// spans and overwrites the oldest, so memory is fixed no matter how long
// the server runs.
//
// Export renders the surviving spans as Chrome trace-event-format JSON
// ("X" complete events, microsecond timestamps): load the file in
// chrome://tracing or https://ui.perfetto.dev and batching stalls, WDRR
// interleavings and per-worker lanes become visible as a timeline
// (`easz_serve --trace-out trace.json`).
//
// Consistency: slots use a seqlock-style ticket (odd while a writer is
// mid-span, even when published). Every field is an atomic, so concurrent
// export is race-free (TSan-clean); a reader discards slots whose ticket
// changed mid-read. Telemetry-grade: an export racing a wrap may drop a
// handful of the oldest spans, never corrupt one.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace easz::obs {

/// Pipeline stages a span can describe. Values are stable (they appear in
/// exported traces); append only.
enum class SpanKind : std::uint8_t {
  kQueueWait = 0,
  kDecode = 1,
  kCodecDecode = 2,
  kBatchWait = 3,
  kReconstruct = 4,
  kAssemble = 5,
  kTotal = 6,
  kCacheHit = 7,
  /// A tenant's degradation ladder moved (DESIGN.md §10). Zero-duration
  /// marker at the submit that triggered the walk; aux = the NEW rung.
  kRungTransition = 8,
  /// The request settled with an error (aux = the rung it ran at). Spans
  /// submit -> failure delivery, mirroring kTotal for successes.
  kFailed = 9,
};

[[nodiscard]] const char* span_name(SpanKind kind);

class TraceRing {
 public:
  /// `capacity` spans are retained (rounded up to a power of two);
  /// 0 disables the ring entirely — record() becomes a cheap no-op and
  /// no slot memory is allocated.
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  [[nodiscard]] bool enabled() const { return slots_ != nullptr; }
  [[nodiscard]] std::size_t capacity() const {
    return slots_ ? mask_ + 1 : 0;
  }

  /// Process-unique request id, starting at 1. Works even when disabled
  /// (ids also ride responses and client-side reports).
  [[nodiscard]] std::uint64_t mint_request_id() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Microseconds since ring construction (the exported timebase).
  [[nodiscard]] double now_us() const;

  /// Records one span. Lock-free; `aux` is a small payload rendered into
  /// the event args (patch count for reconstruct spans, 0 otherwise).
  void record(std::uint64_t request_id, SpanKind kind, double start_us,
              double duration_us, std::uint32_t aux = 0);

  struct Span {
    std::uint64_t request_id = 0;
    SpanKind kind = SpanKind::kTotal;
    std::uint32_t tid = 0;  ///< small per-thread lane id (export lanes)
    std::uint32_t aux = 0;
    double start_us = 0.0;
    double duration_us = 0.0;
  };

  /// All published spans, oldest first. Sorted by start time.
  [[nodiscard]] std::vector<Span> collect() const;

  /// {"traceEvents":[…]} — one "X" (complete) event per span.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  // 0 empty; odd writing; even published
    std::atomic<std::uint64_t> request_id{0};
    std::atomic<std::uint64_t> start_ns{0};
    std::atomic<std::uint64_t> duration_ns{0};
    std::atomic<std::uint64_t> meta{0};  // kind | tid<<8 | aux<<32
  };

  std::unique_ptr<Slot[]> slots_;
  std::size_t mask_ = static_cast<std::size_t>(-1);  // capacity-1; -1 = off
  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::uint64_t> next_request_id_{0};
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace easz::obs
