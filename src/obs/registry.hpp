// Named counter/gauge registry with interval diffing (DESIGN.md §8.2).
//
// Every subsystem that wants a production metric — serve request
// accounting, the tensor::kern pool's steal counters, the block-parallel
// codecs' task counts — registers a named Counter or Gauge once and then
// mutates it lock-free from any thread. Registration (name → stable
// address) takes a mutex; the hot path is one relaxed atomic op.
//
// Interval diffing: a Snapshot stamps every value with a monotonic time, so
// two snapshots yield rates (Δvalue / Δt) — the req/s, shed/s and
// cache-hit-ratio lines easz_serve emits as JSON-lines every
// --stats-every seconds without any per-record bookkeeping.
//
// Process-global kill switches:
//   enabled()            master gate: when false, histogram records,
//                        counter adds and trace spans become no-ops
//                        (bench_serve measures the on/off delta — the
//                        documented < 2% instrumentation-overhead budget).
//   exact_percentiles()  opt-in exact-reservoir mode for StageStats
//                        (EASZ_OBS_EXACT=1 or set programmatically): golden
//                        latency tests assert exact percentiles; production
//                        rides the bounded-error histogram.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace easz::obs {

/// Master observability gate (default on). Relaxed-atomic read on every
/// record; flipping it mid-flight only affects subsequent records.
[[nodiscard]] bool enabled();
void set_enabled(bool on);

/// Exact-percentile reservoir mode for serve::StageStats. Initialised from
/// the EASZ_OBS_EXACT environment variable ("" or "0" = off), overridable
/// at runtime for tests.
[[nodiscard]] bool exact_percentiles();
void set_exact_percentiles(bool on);

/// Monotonically increasing event count. Wait-free add.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (!enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous level (queue depth, inflight). Wait-free set/add.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide registry for library-level metrics (kern pool, codecs).
  /// Per-server metrics live in the server's own instance so two servers
  /// (or back-to-back bench scenarios) never pollute each other.
  static Registry& global();

  /// Returns the counter registered under `name`, creating it on first
  /// use. The reference stays valid for the registry's lifetime. Names
  /// must be 1-128 chars of [A-Za-z0-9_.-] (they flow verbatim into JSON);
  /// anything else throws std::invalid_argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  struct Snapshot {
    double t_s = 0.0;  ///< monotonic stamp (process-wide steady clock)
    std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
    std::vector<std::pair<std::string, std::int64_t>> gauges;     // name-sorted

    /// Counter value by name (0 when absent).
    [[nodiscard]] std::uint64_t counter(const std::string& name) const;
    [[nodiscard]] std::int64_t gauge(const std::string& name) const;
  };

  [[nodiscard]] Snapshot snapshot() const;

  /// Per-second rate of a counter between two snapshots (0 when the
  /// interval is empty or the counter went backwards, which only happens
  /// across registry lifetimes).
  static double rate(const Snapshot& prev, const Snapshot& cur,
                     const std::string& name);

  /// One JSON object: {"t_s":…,"interval_s":…,"rates":{…},"gauges":{…},
  /// "totals":{…}} — rates for every counter, levels for every gauge.
  static std::string delta_json(const Snapshot& prev, const Snapshot& cur);

 private:
  mutable std::mutex mu_;
  // unique_ptr: node-stable addresses survive rehash-free map growth AND
  // keep Counter/Gauge non-movable (they hold atomics).
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

}  // namespace easz::obs
