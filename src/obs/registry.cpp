#include "obs/registry.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace easz::obs {

namespace {

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}

std::atomic<bool>& exact_flag() {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("EASZ_OBS_EXACT");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }()};
  return flag;
}

bool valid_metric_name(const std::string& name) {
  if (name.empty() || name.size() > 128) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

double steady_now_s() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }
void set_enabled(bool on) {
  enabled_flag().store(on, std::memory_order_relaxed);
}

bool exact_percentiles() {
  return exact_flag().load(std::memory_order_relaxed);
}
void set_exact_percentiles(bool on) {
  exact_flag().store(on, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("obs::Registry: invalid metric name '" + name +
                                "' (want 1-128 chars of [A-Za-z0-9_.-])");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  if (!valid_metric_name(name)) {
    throw std::invalid_argument("obs::Registry: invalid metric name '" + name +
                                "' (want 1-128 chars of [A-Za-z0-9_.-])");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

std::uint64_t Registry::Snapshot::counter(const std::string& name) const {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const auto& entry, const std::string& n) { return entry.first < n; });
  return it != counters.end() && it->first == name ? it->second : 0;
}

std::int64_t Registry::Snapshot::gauge(const std::string& name) const {
  const auto it = std::lower_bound(
      gauges.begin(), gauges.end(), name,
      [](const auto& entry, const std::string& n) { return entry.first < n; });
  return it != gauges.end() && it->first == name ? it->second : 0;
}

Registry::Snapshot Registry::snapshot() const {
  Snapshot s;
  s.t_s = steady_now_s();
  std::lock_guard<std::mutex> lock(mu_);
  s.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  return s;  // std::map iteration order: already name-sorted
}

double Registry::rate(const Snapshot& prev, const Snapshot& cur,
                      const std::string& name) {
  const double dt = cur.t_s - prev.t_s;
  if (dt <= 0.0) return 0.0;
  const std::uint64_t before = prev.counter(name);
  const std::uint64_t after = cur.counter(name);
  if (after < before) return 0.0;
  return static_cast<double>(after - before) / dt;
}

std::string Registry::delta_json(const Snapshot& prev, const Snapshot& cur) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "{\"t_s\":%.4f,\"interval_s\":%.4f",
                cur.t_s, cur.t_s - prev.t_s);
  std::string out(buf);
  out += ",\"rates\":{";
  for (std::size_t i = 0; i < cur.counters.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%.3f", i == 0 ? "" : ",",
                  cur.counters[i].first.c_str(),
                  rate(prev, cur, cur.counters[i].first));
    out += buf;
  }
  out += "},\"totals\":{";
  for (std::size_t i = 0; i < cur.counters.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%llu", i == 0 ? "" : ",",
                  cur.counters[i].first.c_str(),
                  static_cast<unsigned long long>(cur.counters[i].second));
    out += buf;
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < cur.gauges.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%lld", i == 0 ? "" : ",",
                  cur.gauges[i].first.c_str(),
                  static_cast<long long>(cur.gauges[i].second));
    out += buf;
  }
  out += "}}";
  return out;
}

}  // namespace easz::obs
