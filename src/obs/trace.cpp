#include "obs/trace.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

#include "obs/registry.hpp"

namespace easz::obs {

namespace {

// Small dense per-thread lane ids: chrome://tracing renders one lane per
// tid, so worker threads appear as parallel tracks instead of one giant
// hashed integer each.
std::uint32_t lane_of_this_thread() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine;
}

}  // namespace

const char* span_name(SpanKind kind) {
  switch (kind) {
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kDecode:
      return "decode";
    case SpanKind::kCodecDecode:
      return "codec_decode";
    case SpanKind::kBatchWait:
      return "batch_wait";
    case SpanKind::kReconstruct:
      return "reconstruct";
    case SpanKind::kAssemble:
      return "assemble";
    case SpanKind::kTotal:
      return "total";
    case SpanKind::kCacheHit:
      return "cache_hit";
    case SpanKind::kRungTransition:
      return "rung_transition";
    case SpanKind::kFailed:
      return "failed";
  }
  return "unknown";
}

TraceRing::TraceRing(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now()) {
  if (capacity == 0) return;
  const std::size_t cap = std::bit_ceil(capacity);
  slots_ = std::make_unique<Slot[]>(cap);
  mask_ = cap - 1;
}

double TraceRing::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRing::record(std::uint64_t request_id, SpanKind kind,
                       double start_us, double duration_us,
                       std::uint32_t aux) {
  if (!slots_ || !obs::enabled()) return;
  const std::uint64_t ticket =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket & mask_];
  // Seqlock publish: odd while writing, 2*(ticket+1) when done. A reader
  // that observes different seq values before/after its field loads
  // discards the slot.
  slot.seq.store(2 * ticket + 1, std::memory_order_release);
  slot.request_id.store(request_id, std::memory_order_relaxed);
  slot.start_ns.store(
      static_cast<std::uint64_t>(std::llround(std::max(0.0, start_us) * 1e3)),
      std::memory_order_relaxed);
  slot.duration_ns.store(
      static_cast<std::uint64_t>(
          std::llround(std::max(0.0, duration_us) * 1e3)),
      std::memory_order_relaxed);
  slot.meta.store(static_cast<std::uint64_t>(kind) |
                      (static_cast<std::uint64_t>(lane_of_this_thread()) << 8) |
                      (static_cast<std::uint64_t>(aux) << 32),
                  std::memory_order_relaxed);
  slot.seq.store(2 * (ticket + 1), std::memory_order_release);
}

std::vector<TraceRing::Span> TraceRing::collect() const {
  std::vector<Span> out;
  if (!slots_) return out;
  const std::size_t cap = mask_ + 1;
  out.reserve(cap);
  for (std::size_t i = 0; i < cap; ++i) {
    const Slot& slot = slots_[i];
    const std::uint64_t s1 = slot.seq.load(std::memory_order_acquire);
    if (s1 == 0 || (s1 & 1) != 0) continue;  // empty or mid-write
    Span span;
    span.request_id = slot.request_id.load(std::memory_order_relaxed);
    span.start_us =
        static_cast<double>(slot.start_ns.load(std::memory_order_relaxed)) *
        1e-3;
    span.duration_us =
        static_cast<double>(slot.duration_ns.load(std::memory_order_relaxed)) *
        1e-3;
    const std::uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    span.kind = static_cast<SpanKind>(meta & 0xFF);
    span.tid = static_cast<std::uint32_t>((meta >> 8) & 0xFFFFFF);
    span.aux = static_cast<std::uint32_t>(meta >> 32);
    const std::uint64_t s2 = slot.seq.load(std::memory_order_acquire);
    if (s1 != s2) continue;  // overwritten mid-read: drop, never corrupt
    out.push_back(span);
  }
  std::sort(out.begin(), out.end(), [](const Span& a, const Span& b) {
    return a.start_us != b.start_us ? a.start_us < b.start_us
                                    : a.request_id < b.request_id;
  });
  return out;
}

std::string TraceRing::to_chrome_json() const {
  const std::vector<Span> spans = collect();
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"cat\":\"serve\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"req\":%llu,"
        "\"n\":%u}}",
        i == 0 ? "" : ",", span_name(s.kind), s.tid, s.start_us,
        s.duration_us, static_cast<unsigned long long>(s.request_id), s.aux);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

}  // namespace easz::obs
