#include "obs/perf_counters.hpp"

#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace easz::obs {

namespace {

#if defined(__linux__)

// (type, config) of the four events, in fds_[] order.
struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};
constexpr EventSpec kSpecs[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
};

int open_event(const EventSpec& spec) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = spec.type;
  attr.config = spec.config;
  attr.disabled = 1;
  // User-space only: works at perf_event_paranoid <= 2 (the common
  // unprivileged ceiling) and measures our code, not the kernel's.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // pid=0, cpu=-1: this thread, any CPU it migrates to.
  const long fd = syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0UL);
  return static_cast<int>(fd);
}

std::uint64_t read_counter(int fd) {
  std::uint64_t value = 0;
  if (fd >= 0 && read(fd, &value, sizeof(value)) != sizeof(value)) value = 0;
  return value;
}

#endif  // __linux__

void append_counter_json(std::string& out, const char* name, bool ok,
                         std::uint64_t value) {
  char buf[96];
  if (ok) {
    std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", name,
                  static_cast<unsigned long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), ",\"%s\":\"unavailable\"", name);
  }
  out += buf;
}

}  // namespace

std::string PerfReading::to_json() const {
  std::string out = available() ? "{\"available\":true" : "{\"available\":false";
  append_counter_json(out, "cycles", cycles_ok, cycles);
  append_counter_json(out, "instructions", instructions_ok, instructions);
  append_counter_json(out, "llc_refs", llc_refs_ok, llc_refs);
  append_counter_json(out, "llc_miss", llc_misses_ok, llc_misses);
  char buf[96];
  if (cycles_ok && instructions_ok) {
    std::snprintf(buf, sizeof(buf), ",\"ipc\":%.4f", ipc());
    out += buf;
  }
  if (llc_refs_ok && llc_misses_ok) {
    std::snprintf(buf, sizeof(buf), ",\"llc_miss_ratio\":%.4f",
                  llc_miss_ratio());
    out += buf;
  }
  out += "}";
  return out;
}

#if defined(__linux__)

PerfCounters::PerfCounters() {
  for (int i = 0; i < kEvents; ++i) fds_[i] = open_event(kSpecs[i]);
}

PerfCounters::~PerfCounters() {
  for (const int fd : fds_) {
    if (fd >= 0) close(fd);
  }
}

bool PerfCounters::available() const {
  for (const int fd : fds_) {
    if (fd >= 0) return true;
  }
  return false;
}

void PerfCounters::start() {
  for (const int fd : fds_) {
    if (fd < 0) continue;
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

PerfReading PerfCounters::stop() {
  for (const int fd : fds_) {
    if (fd >= 0) ioctl(fd, PERF_EVENT_IOC_DISABLE, 0);
  }
  PerfReading r;
  r.cycles_ok = fds_[0] >= 0;
  r.instructions_ok = fds_[1] >= 0;
  r.llc_refs_ok = fds_[2] >= 0;
  r.llc_misses_ok = fds_[3] >= 0;
  r.cycles = read_counter(fds_[0]);
  r.instructions = read_counter(fds_[1]);
  r.llc_refs = read_counter(fds_[2]);
  r.llc_misses = read_counter(fds_[3]);
  return r;
}

#else  // !__linux__: explicit no-op — observability must never be a build
       // or runtime dependency.

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
bool PerfCounters::available() const { return false; }
void PerfCounters::start() {}
PerfReading PerfCounters::stop() { return PerfReading{}; }

#endif

}  // namespace easz::obs
