#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/registry.hpp"

namespace easz::obs {

namespace {

// Stripe selection: each thread gets a sticky stripe assigned round-robin
// at first record, so steady-state recorders never share a cache line
// (until more than kStripes threads exist, where sharing is still correct,
// just contended).
int stripe_of_this_thread() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(mine %
                          static_cast<unsigned>(LatencyHistogram::kStripes));
}

constexpr double kOverflowEdgeUs = 2147483648.0;  // 2^31 µs

}  // namespace

int bucket_index(double seconds) {
  const double us = seconds * 1e6;
  if (!(us >= 1.0)) return 0;  // also catches NaN and negatives
  if (us >= kOverflowEdgeUs) return kHistBuckets - 1;
  int exp;
  const double frac = std::frexp(us, &exp);  // us = frac * 2^exp, frac ∈ [0.5, 1)
  const int octave = exp - 1;                // us ∈ [2^octave, 2^(octave+1))
  const int sub = std::min(
      kSubBuckets - 1,
      static_cast<int>((frac - 0.5) * 2.0 * static_cast<double>(kSubBuckets)));
  return 1 + octave * kSubBuckets + sub;
}

double bucket_lower_edge_s(int index) {
  if (index <= 0) return 0.0;
  if (index >= kHistBuckets - 1) return kOverflowEdgeUs * 1e-6;
  const int octave = (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave) *
         1e-6;
}

double bucket_upper_edge_s(int index) {
  if (index < 0) return 0.0;
  if (index >= kHistBuckets - 1) {
    return std::numeric_limits<double>::infinity();
  }
  return bucket_lower_edge_s(index + 1);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (int i = 0; i < kHistBuckets; ++i) counts[i] += other.counts[i];
  count += other.count;
  sum_s += other.sum_s;
  max_s = std::max(max_s, other.max_s);
}

double HistogramSnapshot::quantile(double p) const {
  if (count == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Nearest rank: the smallest sample with at least p% of the mass at or
  // below it — the same convention as serve::percentile().
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (int i = 0; i < kHistBuckets; ++i) {
    seen += counts[i];
    if (seen >= rank) {
      if (i >= kHistBuckets - 1) return max_s;  // overflow: only exact bound
      const double mid = 0.5 * (bucket_lower_edge_s(i) + bucket_upper_edge_s(i));
      // The exact max tightens the top bucket: no estimate may exceed it.
      return max_s > 0.0 ? std::min(mid, max_s) : mid;
    }
  }
  return max_s;
}

void LatencyHistogram::record(double seconds) {
  if (!enabled()) return;
  Stripe& stripe = stripes_[static_cast<std::size_t>(stripe_of_this_thread())];
  const int bucket = bucket_index(seconds);
  stripe.counts[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  // Nanosecond integer sum: fetch_add on u64 is wait-free where it matters;
  // values are clamped into the same range the buckets cover, so the sum
  // cannot be poisoned by a wild sample.
  const double clamped =
      std::isfinite(seconds) ? std::max(0.0, std::min(seconds, 4.0e3)) : 0.0;
  const auto ns = static_cast<std::uint64_t>(std::llround(clamped * 1e9));
  stripe.sum_ns.fetch_add(ns, std::memory_order_relaxed);
  // Exact max via CAS; retries only while another thread is raising it.
  std::uint64_t seen = stripe.max_ns.load(std::memory_order_relaxed);
  while (ns > seen && !stripe.max_ns.compare_exchange_weak(
                          seen, ns, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot s;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  for (const Stripe& stripe : stripes_) {
    for (int i = 0; i < kHistBuckets; ++i) {
      s.counts[static_cast<std::size_t>(i)] +=
          stripe.counts[static_cast<std::size_t>(i)].load(
              std::memory_order_relaxed);
    }
    sum_ns += stripe.sum_ns.load(std::memory_order_relaxed);
    max_ns = std::max(max_ns, stripe.max_ns.load(std::memory_order_relaxed));
  }
  for (const std::uint64_t c : s.counts) s.count += c;
  s.sum_s = static_cast<double>(sum_ns) * 1e-9;
  s.max_s = static_cast<double>(max_ns) * 1e-9;
  return s;
}

}  // namespace easz::obs
