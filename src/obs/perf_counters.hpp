// Hardware performance counters via perf_event_open (DESIGN.md §8.4).
//
// 5GC²ache's lesson — serving throughput is governed by what stays
// LLC-resident — is only actionable if the benches MEASURE cache
// behaviour. This wrapper opens the four counters the memory-hierarchy
// work needs (cycles, instructions, LLC references, LLC misses) for the
// calling thread and reads them around a measured region.
//
// Availability matrix (DESIGN.md §8.4): perf_event_open fails with EACCES
// under perf_event_paranoid >= 2 without CAP_PERFMON (most CI containers),
// with ENOENT on hardware without the generic cache events (some VMs), and
// the syscall does not exist off Linux. Every failure mode degrades to
// available() == false per counter; readings render "unavailable" instead
// of fake zeros, and nothing else in the system changes behaviour — the
// wrapper is observability, never a dependency.
//
// Usage: construct once (opens fds), then start()/stop() around regions,
// or the RAII PerfScope for exception-safe measurement.
#pragma once

#include <cstdint>
#include <string>

namespace easz::obs {

/// One measured region's counter deltas. A field is meaningful only when
/// its _ok flag is set (counters fail to open independently).
struct PerfReading {
  bool cycles_ok = false;
  bool instructions_ok = false;
  bool llc_refs_ok = false;
  bool llc_misses_ok = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_refs = 0;
  std::uint64_t llc_misses = 0;

  /// Any hardware counter usable at all.
  [[nodiscard]] bool available() const {
    return cycles_ok || instructions_ok || llc_refs_ok || llc_misses_ok;
  }
  [[nodiscard]] double ipc() const {
    return cycles_ok && instructions_ok && cycles > 0
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }
  [[nodiscard]] double llc_miss_ratio() const {
    return llc_refs_ok && llc_misses_ok && llc_refs > 0
               ? static_cast<double>(llc_misses) /
                     static_cast<double>(llc_refs)
               : 0.0;
  }

  /// {"available":true,"cycles":…,"instructions":…,"ipc":…,"llc_refs":…,
  /// "llc_miss":…,"llc_miss_ratio":…} with "unavailable" strings for
  /// counters that could not be opened ({"available":false,
  /// "llc_miss":"unavailable"} when nothing opened). Always contains an
  /// "llc_miss" key — the ROADMAP item 2 contract for bench JSON.
  [[nodiscard]] std::string to_json() const;
};

/// Per-thread counter set. Not thread-safe: measure from the thread that
/// constructed it (counters follow the calling thread, which is what the
/// single-threaded bench timing loops want; pool workers are measured in
/// aggregate through cycles anyway).
class PerfCounters {
 public:
  PerfCounters();   ///< opens whatever the kernel permits; never throws
  ~PerfCounters();

  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  /// True when at least one counter opened.
  [[nodiscard]] bool available() const;

  void start();          ///< reset + enable all open counters
  PerfReading stop();    ///< disable and read deltas since start()

 private:
  static constexpr int kEvents = 4;
  int fds_[kEvents] = {-1, -1, -1, -1};
};

/// RAII measurement: starts at construction, stops into `out` at scope
/// exit (exception-safe, so a throwing measured region still reads).
class PerfScope {
 public:
  PerfScope(PerfCounters& counters, PerfReading& out)
      : counters_(counters), out_(out) {
    counters_.start();
  }
  ~PerfScope() { out_ = counters_.stop(); }
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  PerfCounters& counters_;
  PerfReading& out_;
};

}  // namespace easz::obs
