// Lock-free log-bucketed latency histograms (observability substrate,
// DESIGN.md §8.1).
//
// The serve hot path records one latency sample per stage per request; under
// a production fleet that is millions of records/s across worker threads.
// The old telemetry (a mutex + unbounded std::vector<double> per stage)
// serialized every worker on one lock and grew without bound — this layer
// replaces it with a fixed-layout histogram whose record() is wait-free
// O(1): one relaxed fetch_add into a striped bucket array plus a relaxed
// fetch_add of the nanosecond sum (a CAS loop maintains the exact max, the
// only non-wait-free piece, and it converges in a handful of iterations).
//
// Bucket layout (log2-linear, the HdrHistogram/DDSketch family):
//   bucket 0                     [0, 1 µs)   underflow (also NaN/negative)
//   buckets 1 .. kOctaves*kSub   octave o = 0..kOctaves-1 split into kSub
//                                equal-width linear buckets:
//                                [2^o * (1 + s/kSub), 2^o * (1 + (s+1)/kSub)) µs
//   bucket kBuckets-1            [2^kOctaves µs, ∞)  overflow
//
// With kSub = 4 and kOctaves = 31 that is 126 buckets covering 1 µs to
// ~2147 s — the whole plausible serving range — in ~1 KB per stripe.
//
// Error bound: a quantile is reported as the arithmetic midpoint of the
// bucket holding its nearest-rank sample, so the relative error against the
// true sample is at most (bucket width / 2) / bucket lower edge
// = 1 / (2 * kSub) = 12.5%, independent of magnitude. count/mean/max are
// exact. tests/obs_test.cpp asserts the bound across distributions;
// serve keeps an exact-reservoir opt-out (EASZ_OBS_EXACT) for golden tests.
//
// Snapshots are plain data: mergeable (associative, commutative) so
// per-thread/per-replica histograms aggregate into fleet views.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace easz::obs {

inline constexpr int kSubBuckets = 4;   ///< linear buckets per octave
inline constexpr int kOctaves = 31;     ///< 1 µs .. 2^31 µs (~35.8 min)
inline constexpr int kHistBuckets = 2 + kOctaves * kSubBuckets;  // 126

/// Documented quantile error bound: relative to the true nearest-rank
/// sample, at most 1/(2*kSubBuckets).
inline constexpr double kMaxQuantileRelError = 1.0 / (2.0 * kSubBuckets);

/// Bucket index of a latency in seconds. O(1), never throws; NaN, negative
/// and sub-microsecond values land in the underflow bucket.
[[nodiscard]] int bucket_index(double seconds);

/// Inclusive lower edge of a bucket, in seconds (bucket 0 → 0).
[[nodiscard]] double bucket_lower_edge_s(int index);

/// Exclusive upper edge, in seconds (overflow bucket → +inf).
[[nodiscard]] double bucket_upper_edge_s(int index);

/// Mergeable point-in-time view of one histogram. Plain data.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistBuckets> counts{};
  std::uint64_t count = 0;   ///< sum of counts[] (kept for convenience)
  double sum_s = 0.0;        ///< exact sum of recorded values
  double max_s = 0.0;        ///< exact maximum recorded value

  /// Element-wise accumulate: associative and commutative, so any merge
  /// tree over thread/replica snapshots yields the same aggregate.
  void merge(const HistogramSnapshot& other);

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum_s / static_cast<double>(count);
  }

  /// Nearest-rank quantile estimate, p in [0, 100]: the midpoint of the
  /// bucket holding the rank-⌈p/100·n⌉ sample, clamped to the exact max.
  /// Relative error vs the true sample ≤ kMaxQuantileRelError.
  [[nodiscard]] double quantile(double p) const;
};

/// Multi-producer wait-free latency histogram. Threads record concurrently
/// with no mutual exclusion; memory is fixed at construction (kStripes
/// cache-line-padded bucket arrays — striping keeps concurrent recorders
/// off each other's cache lines, it is not needed for correctness).
class LatencyHistogram {
 public:
  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Wait-free O(1). No-op when obs::enabled() is false.
  void record(double seconds);

  /// Consistent-enough view for telemetry: counts are loaded relaxed, so a
  /// snapshot taken concurrently with recording may miss in-flight samples
  /// but never tears a bucket; once recorders quiesce it is exact.
  [[nodiscard]] HistogramSnapshot snapshot() const;

  static constexpr int kStripes = 8;

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kHistBuckets> counts{};
    std::atomic<std::uint64_t> sum_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
  };

  std::array<Stripe, kStripes> stripes_;
};

}  // namespace easz::obs
