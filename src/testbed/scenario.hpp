// End-to-end edge->server pipeline cost evaluation (Figs. 1, 6, 8d).
//
// A Scenario binds an edge device, a server and a link, and prices a
// compression pipeline run: per-stage latency (erase-and-squeeze, encode,
// model load, transmit, decode, reconstruct), edge power draw during encode
// and edge memory footprint. Workload quantities (FLOPs, bytes) come from
// the codecs' own cost reporting; device constants from device.hpp.
#pragma once

#include "codec/codec.hpp"
#include "core/recon_model.hpp"
#include "testbed/device.hpp"

namespace easz::testbed {

struct StageBreakdown {
  double erase_squeeze_s = 0.0;  ///< Easz only; ~0 for plain codecs
  double model_load_s = 0.0;     ///< edge-side model load (cold start)
  double encode_s = 0.0;
  double transmit_s = 0.0;
  double decode_s = 0.0;       ///< server-side codec decode
  double reconstruct_s = 0.0;  ///< server-side transformer reconstruction

  [[nodiscard]] double end_to_end_s(bool include_load = false) const {
    return (include_load ? model_load_s : 0.0) + erase_squeeze_s + encode_s +
           transmit_s + decode_s + reconstruct_s;
  }
};

struct EdgeCost {
  double cpu_power_w = 0.0;  ///< average during encode
  double gpu_power_w = 0.0;
  double memory_bytes = 0.0;
  [[nodiscard]] double total_power_w() const { return cpu_power_w + gpu_power_w; }
};

struct PipelineCost {
  StageBreakdown latency;
  EdgeCost edge;
};

/// Extra per-codec latency knobs the analytic model cannot derive (e.g.
/// framework graph-building time dominating Cheng's 11.6 s model load).
struct CodecOverheads {
  double load_init_s = 0.0;
};

class Scenario {
 public:
  Scenario(DeviceModel edge, DeviceModel server, NetworkLink link);

  /// Plain codec pipeline: edge encode -> transmit -> server decode.
  /// `payload_bytes` is the actual compressed size for the image.
  [[nodiscard]] PipelineCost run_codec(const codec::ImageCodec& codec, int width,
                                       int height, double payload_bytes,
                                       CodecOverheads overheads = {}) const;

  /// Easz pipeline: edge erase-and-squeeze + inner codec encode of the
  /// squeezed image -> transmit (payload + mask) -> server decode +
  /// transformer reconstruction.
  [[nodiscard]] PipelineCost run_easz(const codec::ImageCodec& inner,
                                      const core::ReconstructionModel& model,
                                      int width, int height, int erased_per_row,
                                      double payload_bytes) const;

  [[nodiscard]] const DeviceModel& edge() const { return edge_; }
  [[nodiscard]] const DeviceModel& server() const { return server_; }
  [[nodiscard]] const NetworkLink& link() const { return link_; }

 private:
  DeviceModel edge_;
  DeviceModel server_;
  NetworkLink link_;
};

/// Default paper testbed: TX2 edge, 2080Ti server, Wi-Fi link.
Scenario paper_testbed();

}  // namespace easz::testbed
