// Analytic device and network models (substitute for the paper's physical
// Jetson TX2 + desktop testbed; see DESIGN.md §2).
//
// Latency, power and memory are computed from each codec's reported FLOPs /
// model bytes against sustained-throughput constants calibrated so that the
// paper's *baseline* measurements (Fig. 1: 18 s neural encode on TX2, ~150 ms
// transmission; Fig. 6: ~3 W neural encode power, ~2 GB footprint) are
// reproduced. Relative comparisons — which is what every figure shows — then
// follow from the workloads, not from the constants.
#pragma once

#include <string>

namespace easz::testbed {

struct DeviceModel {
  std::string name;
  double nn_flops_per_s = 1e9;   ///< sustained NN throughput (GPU if present)
  double cpu_flops_per_s = 1e9;  ///< classical codec / memory-movement path
  double io_bytes_per_s = 50e6;  ///< storage -> RAM model loading
  double idle_power_w = 0.5;
  double cpu_active_power_w = 1.0;  ///< added when the CPU path is busy
  double gpu_active_power_w = 2.0;  ///< added when the NN path is busy
  double base_memory_bytes = 0.0;   ///< runtime baseline footprint
  double activation_bytes_per_px = 0.0;  ///< NN inference activation memory
};

/// NVIDIA Jetson TX2 (edge). NN throughput reflects the paper's ~18 s encode
/// of a 512x768 image with Cheng/MBT-class models.
DeviceModel jetson_tx2();

/// i7-9700K + RTX 2080Ti desktop (server). NN throughput reflects the
/// paper's ~1.9 s transformer reconstruction of a 512x768 image.
DeviceModel desktop_2080ti();

struct NetworkLink {
  std::string name;
  double bytes_per_s = 500e3;
  double rtt_s = 0.02;

  [[nodiscard]] double transfer_s(double bytes) const {
    return rtt_s + bytes / bytes_per_s;
  }
};

/// Raspberry Pi 4: the weaker endpoint the paper's §II argues many real
/// deployments use ("many real-life endpoints are less potent than the TX2").
/// No usable GPU for NN inference; NN falls back to NEON CPU throughput.
DeviceModel raspberry_pi4();

/// A100 datacenter server — the paper's §IV-B upgrade path for the
/// reconstruction stage.
DeviceModel a100_server();

/// Wi-Fi router TCP path matching the paper's ~150 ms transmissions.
NetworkLink wifi_link();

/// LTE Cat-M1-ish constrained uplink for remote IoT deployments.
NetworkLink lte_iot_link();

}  // namespace easz::testbed
