// Traffic generator for the reconstruction server (DESIGN.md §3.4).
//
// Builds replayable traces of edge uploads whose ARRIVAL TIMES come from the
// analytic device/link models in device.hpp: each simulated client runs the
// edge half of the pipeline (erase-and-squeeze + inner codec) on its modeled
// device, ships the payload over its modeled link, and the server sees the
// request when the transfer completes. Three canonical workloads:
//
//   wildlife bursts      Pi-4 camera traps on LTE-IoT uplinks; motion events
//                        trigger frame bursts, and stuck triggers resend
//                        byte-identical frames (the result-cache workload).
//   industrial stream    TX2 inspection stations on factory Wi-Fi; steady
//                        cadence, uniform geometry — the batching workload.
//   heterogeneous mix    mixed devices, image sizes, erase ratios and both
//                        squeeze axes — the worst-case scheduling workload.
//
// replay_trace() pushes a trace into a live ReconServer, optionally scaling
// modeled time (0 = as fast as possible), and reports client-side outcomes
// next to the server's own stats snapshot.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "codec/codec.hpp"
#include "core/recon_model.hpp"
#include "obs/registry.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "testbed/scenario.hpp"

namespace easz::testbed {

/// One modeled upload. The request carries a tenant derived from the
/// device/link model that produced it (Pi-4/LTE-IoT fleets -> "wildlife",
/// TX2/Wi-Fi stations -> "industrial"), so a multi-tenant server can apply
/// per-fleet weight/rate policy to a replayed trace.
struct LoadEvent {
  double arrival_s = 0.0;  ///< modeled arrival at the server (trace clock)
  int client_id = 0;
  std::size_t image_index = 0;  ///< into LoadTrace::originals
  serve::ServeRequest request;
};

/// A replayable workload. Events are sorted by arrival time; `originals`
/// holds the pre-compression images so callers can verify reconstructions.
struct LoadTrace {
  std::string name;
  std::vector<LoadEvent> events;
  std::vector<image::Image> originals;

  [[nodiscard]] double modeled_span_s() const {
    return events.empty() ? 0.0
                          : events.back().arrival_s - events.front().arrival_s;
  }
};

/// Camera-trap bursts: `cameras` Pi-4 clients on LTE-IoT links, each firing
/// `bursts` motion events of `frames_per_burst` frames. A frame is a
/// byte-identical resend of the camera's previous frame with probability
/// `duplicate_prob` (stuck trigger, persisting across bursts); camera 0 is
/// fully stuck whenever duplicates are enabled, so timed replays always
/// carry cross-burst resends — the cache's deterministic hits.
LoadTrace make_wildlife_burst_trace(const core::ReconstructionModel& model,
                                    codec::ImageCodec& codec, int cameras,
                                    int bursts, int frames_per_burst,
                                    double duplicate_prob = 0.5,
                                    std::uint64_t seed = 42);

/// Inspection stations: TX2 clients on Wi-Fi pushing a steady stream of
/// uniform-geometry frames — maximum cross-request batching opportunity
/// because every station shares the deployment's mask seed.
LoadTrace make_industrial_stream_trace(const core::ReconstructionModel& model,
                                       codec::ImageCodec& codec, int stations,
                                       int frames_per_station,
                                       std::uint64_t seed = 43);

/// Mixed fleet: alternating Pi-4/LTE and TX2/Wi-Fi clients, image sizes from
/// ~3x1 to ~6x4 patches, erase counts cycling 1..3 and both squeeze axes —
/// every request family lands in a different batch group.
LoadTrace make_heterogeneous_trace(const core::ReconstructionModel& model,
                                   codec::ImageCodec& codec, int clients,
                                   int frames_per_client,
                                   std::uint64_t seed = 44);

struct ReplayOptions {
  /// Wall seconds per modeled second. 0 submits back-to-back (throughput
  /// mode); 1 replays in modeled real time.
  double time_scale = 0.0;
  /// Drive the server open-loop through submit_async() callbacks instead of
  /// holding one future per request: the replay thread only submits, and
  /// completions land on worker threads. Client-side outcome accounting is
  /// identical either way.
  bool async = false;
  /// When set, the replay publishes its CLIENT-side view into this registry:
  /// client.<tenant>.completed/.rejected/.failed counters, a shed-reason
  /// breakdown (client.<tenant>.shed.queue_full/.rate_limited/.quota) and a
  /// client.<tenant>.max_request_id gauge from the server-minted ids it saw.
  /// Cross-checking these against the server's own serve.* counters is how
  /// tests prove no outcome is lost between submit and settle.
  obs::Registry* registry = nullptr;
};

struct ReplayReport {
  std::string trace;
  int completed = 0;
  int rejected = 0;
  int failed = 0;
  double wall_s = 0.0;          ///< replay wall-clock duration
  double modeled_span_s = 0.0;  ///< trace duration on the model clock
  double throughput_rps = 0.0;  ///< completed / wall_s
  double latency_p50_s = 0.0;   ///< client-observed total latency
  double latency_p99_s = 0.0;
  serve::ServerStatsSnapshot server;

  /// Client-observed outcomes split by the tenant each event was tagged
  /// with (tenant-name ordered; single-tenant traces have one entry).
  struct TenantOutcome {
    std::string tenant;
    int completed = 0;
    int rejected = 0;  ///< total shed = queue_full + rate_limited + quota
    int failed = 0;
    int shed_queue_full = 0;
    int shed_rate_limited = 0;
    int shed_quota = 0;
    double latency_p50_s = 0.0;
    double latency_p95_s = 0.0;
    /// Server-minted request ids observed by this tenant's clients, in
    /// settle order: completed responses carry theirs; sync-path shed
    /// submits mint one too (async sheds report only a status). Uniqueness
    /// across tenants is a trace-correctness invariant tests assert.
    std::vector<std::uint64_t> request_ids;
  };
  std::vector<TenantOutcome> tenants;

  [[nodiscard]] std::string to_json() const;
};

/// Replays a trace against a live server from the calling thread and blocks
/// until every accepted request resolves.
ReplayReport replay_trace(const LoadTrace& trace, serve::ReconServer& server,
                          ReplayOptions options = {});

/// Socket fleet replay (DESIGN.md §11.4): the same traces, driven over TCP
/// against a wire endpoint — easz_serve --listen or an easz_router front
/// door. One thread per distinct client_id, each owning one WireClient and
/// replaying its own events closed-loop in arrival order (matching the
/// modeled device: an edge camera does not pipeline). Outcomes map onto the
/// in-process report: kOk -> completed, kShed -> rejected (with the
/// SubmitStatus reason breakdown), kFailed -> failed; a broken connection
/// fails that client's remaining events instead of hanging the replay.
struct SocketReplayOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  /// Wall seconds per modeled second; 0 = as fast as possible (closed-loop
  /// per client either way).
  double time_scale = 0.0;
  double connect_timeout_s = 5.0;
  double response_timeout_s = 120.0;
  /// Same client.* counter mirror as ReplayOptions::registry.
  obs::Registry* registry = nullptr;
  /// Invoked for every kOk response next to the event that produced it,
  /// serialized under an internal mutex — the hook easz_serve --connect
  /// uses to assert socket responses are byte-identical to a local decode.
  std::function<void(const LoadEvent& event,
                     const serve::wire::WireResponse& response)>
      on_response;
};

ReplayReport replay_trace_sockets(const LoadTrace& trace,
                                  SocketReplayOptions options);

}  // namespace easz::testbed
