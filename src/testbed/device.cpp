#include "testbed/device.hpp"

namespace easz::testbed {

DeviceModel jetson_tx2() {
  DeviceModel d;
  d.name = "jetson-tx2";
  // 512x768 @ 450 kFLOPs/px (MBT-class) -> ~16 s encode, near Fig. 1's 18 s.
  d.nn_flops_per_s = 11e9;
  // Memory-movement-bound CPU work (erase-and-squeeze, JPEG) at ~0.6 GFLOPs.
  d.cpu_flops_per_s = 0.6e9;
  // eMMC + runtime graph building; per-model init overheads are added by the
  // benches where the paper shows them (Cheng's 11.6 s load is mostly init).
  d.io_bytes_per_s = 75e6;
  d.idle_power_w = 0.8;
  d.cpu_active_power_w = 1.1;
  d.gpu_active_power_w = 1.9;
  d.base_memory_bytes = 0.95e9;       // runtime + framework baseline
  d.activation_bytes_per_px = 2200.0; // deep conv stacks at 512x768 ≈ 0.9 GB
  return d;
}

DeviceModel desktop_2080ti() {
  DeviceModel d;
  d.name = "desktop-2080ti";
  // Small-batch pixel transformer: ~0.08 TFLOPs sustained -> ~1.9 s for the
  // paper's reconstruction stage at 512x768.
  d.nn_flops_per_s = 80e9;
  d.cpu_flops_per_s = 6e9;
  d.io_bytes_per_s = 500e6;
  d.idle_power_w = 30.0;
  d.cpu_active_power_w = 35.0;
  d.gpu_active_power_w = 120.0;
  d.base_memory_bytes = 1.5e9;
  d.activation_bytes_per_px = 1500.0;
  return d;
}

DeviceModel raspberry_pi4() {
  DeviceModel d;
  d.name = "raspberry-pi4";
  // No CUDA: NN work runs on 4x A72 NEON at a few GFLOPs sustained.
  d.nn_flops_per_s = 2.5e9;
  d.cpu_flops_per_s = 0.4e9;
  d.io_bytes_per_s = 40e6;  // SD card
  d.idle_power_w = 0.6;
  d.cpu_active_power_w = 2.2;
  d.gpu_active_power_w = 0.0;
  d.base_memory_bytes = 0.5e9;
  d.activation_bytes_per_px = 2200.0;
  return d;
}

DeviceModel a100_server() {
  DeviceModel d;
  d.name = "a100-server";
  // ~8x the 2080Ti's sustained small-batch transformer throughput.
  d.nn_flops_per_s = 650e9;
  d.cpu_flops_per_s = 12e9;
  d.io_bytes_per_s = 2e9;
  d.idle_power_w = 60.0;
  d.cpu_active_power_w = 50.0;
  d.gpu_active_power_w = 300.0;
  d.base_memory_bytes = 4e9;
  d.activation_bytes_per_px = 1500.0;
  return d;
}

NetworkLink wifi_link() {
  NetworkLink l;
  l.name = "wifi-tcp";
  // Effective small-transfer TCP throughput over the paper's Wi-Fi router;
  // ~60 KB at 0.5 MB/s + 20 ms RTT ≈ 140 ms, the Fig. 1 band.
  l.bytes_per_s = 0.5e6;
  l.rtt_s = 0.02;
  return l;
}

NetworkLink lte_iot_link() {
  NetworkLink l;
  l.name = "lte-cat-m1";
  l.bytes_per_s = 40e3;  // ~320 kbit/s effective uplink
  l.rtt_s = 0.1;
  return l;
}

}  // namespace easz::testbed
