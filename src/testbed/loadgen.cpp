#include "testbed/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "core/pipeline.hpp"
#include "data/synth.hpp"
#include "serve/stats.hpp"
#include "serve/transport.hpp"
#include "util/prng.hpp"
#include "util/stopwatch.hpp"

namespace easz::testbed {

namespace {

/// Edge-side cost of shipping one request, on the trace's model clock:
/// erase-and-squeeze + inner codec encode on the edge device, then the link
/// transfer. Reconstruction cost is excluded — that is the real server's job.
double modeled_upload_s(const Scenario& scenario,
                        const codec::ImageCodec& codec,
                        const core::ReconstructionModel& model, int width,
                        int height, int erased_per_row, double payload_bytes) {
  const PipelineCost cost = scenario.run_easz(codec, model, width, height,
                                              erased_per_row, payload_bytes);
  return cost.latency.erase_squeeze_s + cost.latency.encode_s +
         cost.latency.transmit_s;
}

serve::ServeRequest encode_request(const core::EaszConfig& cfg,
                                   codec::ImageCodec& codec,
                                   const image::Image& img,
                                   const std::string& tenant) {
  const core::EaszPipeline edge(cfg, codec, nullptr);
  serve::ServeRequest request;
  request.compressed = edge.encode(img);
  request.codec = codec.name();
  request.tenant = tenant;
  return request;
}

void finalize_trace(LoadTrace& trace) {
  std::stable_sort(trace.events.begin(), trace.events.end(),
                   [](const LoadEvent& a, const LoadEvent& b) {
                     return a.arrival_s < b.arrival_s;
                   });
}

}  // namespace

LoadTrace make_wildlife_burst_trace(const core::ReconstructionModel& model,
                                    codec::ImageCodec& codec, int cameras,
                                    int bursts, int frames_per_burst,
                                    double duplicate_prob, std::uint64_t seed) {
  LoadTrace trace;
  trace.name = "wildlife_burst";
  const Scenario field(raspberry_pi4(), desktop_2080ti(), lte_iot_link());
  util::Pcg32 rng(seed, 0x11dF);
  const int patch = model.config().patchify.patch;
  const int w = patch * 5;
  const int h = patch * 3;

  for (int cam = 0; cam < cameras; ++cam) {
    // Camera 0 is fully stuck (every frame after its first is a resend) so
    // timed replays always contain cross-burst duplicates — the ones that
    // arrive long after the original completed and therefore hit the cache.
    const double cam_dup_prob =
        cam == 0 && duplicate_prob > 0.0 ? 1.0 : duplicate_prob;
    core::EaszConfig cfg;
    cfg.patchify = model.config().patchify;
    cfg.erased_per_row = 1;
    cfg.mask_seed = seed ^ static_cast<std::uint64_t>(cam);
    // Motion events are sparse; bursts land minutes apart with jitter.
    double clock = 5.0 * cam + 60.0 * rng.next_float();
    // A stuck trigger keeps resending its last frame across bursts, so
    // resends also arrive minutes after the original completed — the case
    // the result cache exists for (in-flight duplicates just recompute).
    serve::ServeRequest last_request;
    std::size_t last_index = 0;
    bool have_last = false;
    for (int b = 0; b < bursts; ++b) {
      for (int f = 0; f < frames_per_burst; ++f) {
        LoadEvent ev;
        ev.client_id = cam;
        const bool resend = have_last && rng.next_float() < cam_dup_prob;
        if (resend) {
          // Stuck trigger: byte-identical upload of the previous frame.
          ev.request = last_request;
          ev.image_index = last_index;
        } else {
          trace.originals.push_back(data::synth_photo(w, h, rng));
          ev.image_index = trace.originals.size() - 1;
          ev.request =
              encode_request(cfg, codec, trace.originals.back(), "wildlife");
          last_request = ev.request;
          last_index = ev.image_index;
          have_last = true;
        }
        clock += modeled_upload_s(
            field, codec, model, w, h, cfg.erased_per_row,
            static_cast<double>(ev.request.compressed.size_bytes()));
        ev.arrival_s = clock;
        trace.events.push_back(std::move(ev));
        clock += 0.25;  // trigger re-arm time between burst frames
      }
      clock += 120.0 + 60.0 * rng.next_float();  // gap to the next event
    }
  }
  finalize_trace(trace);
  return trace;
}

LoadTrace make_industrial_stream_trace(const core::ReconstructionModel& model,
                                       codec::ImageCodec& codec, int stations,
                                       int frames_per_station,
                                       std::uint64_t seed) {
  LoadTrace trace;
  trace.name = "industrial_stream";
  const Scenario factory = paper_testbed();  // TX2 edge, Wi-Fi, 2080Ti server
  util::Pcg32 rng(seed, 0xFAC7);
  const int patch = model.config().patchify.patch;
  const int w = patch * 4;
  const int h = patch * 4;

  core::EaszConfig cfg;
  cfg.patchify = model.config().patchify;
  cfg.erased_per_row = 2;
  cfg.mask_seed = seed;  // one deployment-wide mask: every frame batches

  for (int st = 0; st < stations; ++st) {
    double clock = 0.3 * st;  // stations started in sequence
    for (int f = 0; f < frames_per_station; ++f) {
      LoadEvent ev;
      ev.client_id = st;
      trace.originals.push_back(data::synth_texture(w, h, rng));
      ev.image_index = trace.originals.size() - 1;
      ev.request =
          encode_request(cfg, codec, trace.originals.back(), "industrial");
      clock += modeled_upload_s(
          factory, codec, model, w, h, cfg.erased_per_row,
          static_cast<double>(ev.request.compressed.size_bytes()));
      ev.arrival_s = clock;
      trace.events.push_back(std::move(ev));
      clock += 2.0;  // line cadence: one part every ~2 s
    }
  }
  finalize_trace(trace);
  return trace;
}

LoadTrace make_heterogeneous_trace(const core::ReconstructionModel& model,
                                   codec::ImageCodec& codec, int clients,
                                   int frames_per_client, std::uint64_t seed) {
  LoadTrace trace;
  trace.name = "heterogeneous_mix";
  const Scenario lte(raspberry_pi4(), desktop_2080ti(), lte_iot_link());
  const Scenario wifi = paper_testbed();
  util::Pcg32 rng(seed, 0x4e7e);
  const auto patchify = model.config().patchify;
  const int patch = patchify.patch;
  const int grid = patchify.grid();

  for (int cl = 0; cl < clients; ++cl) {
    const Scenario& scenario = cl % 2 == 0 ? lte : wifi;
    core::EaszConfig cfg;
    cfg.patchify = patchify;
    cfg.erased_per_row = 1 + cl % std::min(3, grid - 1);
    cfg.axis = cl % 3 == 0 ? core::SqueezeAxis::kVertical
                           : core::SqueezeAxis::kHorizontal;
    cfg.mask_seed = seed + static_cast<std::uint64_t>(cl) * 977;
    double clock = 0.7 * cl;
    for (int f = 0; f < frames_per_client; ++f) {
      // Sizes sweep ~3x1 to ~6x4 patches, deliberately not patch-aligned.
      const int w = patch * (3 + (cl + f) % 4) - (f % 2) * (patch / 2);
      const int h = patch * (1 + (cl + 2 * f) % 4) + (f % 3);
      LoadEvent ev;
      ev.client_id = cl;
      trace.originals.push_back(f % 2 == 0 ? data::synth_photo(w, h, rng)
                                           : data::synth_cartoon(w, h, rng));
      ev.image_index = trace.originals.size() - 1;
      // Tenant follows the device/link model: LTE camera fleets are the
      // wildlife tenant, Wi-Fi inspection stations the industrial one.
      ev.request = encode_request(cfg, codec, trace.originals.back(),
                                  cl % 2 == 0 ? "wildlife" : "industrial");
      clock += modeled_upload_s(
          scenario, codec, model, w, h, cfg.erased_per_row,
          static_cast<double>(ev.request.compressed.size_bytes()));
      ev.arrival_s = clock;
      trace.events.push_back(std::move(ev));
      clock += 0.5 + 2.0 * rng.next_float();
    }
  }
  finalize_trace(trace);
  return trace;
}

namespace {

// Client-side outcome accumulator shared by the sync and async replay
// paths. The async path mutates it from worker-thread callbacks, so all
// access goes through `mu`.
struct ReplayAccounting {
  std::mutex mu;
  std::condition_variable all_done;
  int outstanding = 0;
  std::map<std::string, ReplayReport::TenantOutcome> tenants;
  std::map<std::string, std::vector<double>> latencies;

  void settled(const std::string& tenant, const serve::ServeResponse& resp,
               const std::exception_ptr& error, bool was_outstanding) {
    std::lock_guard<std::mutex> lock(mu);
    if (error) {
      ++tenants[tenant].failed;
    } else {
      ++tenants[tenant].completed;
      latencies[tenant].push_back(resp.timing.total_s);
      if (resp.request_id != 0) {
        tenants[tenant].request_ids.push_back(resp.request_id);
      }
    }
    if (was_outstanding) {
      --outstanding;
      all_done.notify_all();
    }
  }

  // One shed submit: total + per-reason breakdown. The sync path passes the
  // id minted for the shed request; async sheds have none (id = 0).
  void shed(const std::string& tenant, serve::SubmitStatus status,
            std::uint64_t request_id) {
    std::lock_guard<std::mutex> lock(mu);
    ReplayReport::TenantOutcome& t = tenants[tenant];
    ++t.rejected;
    switch (status) {
      case serve::SubmitStatus::kQueueFull: ++t.shed_queue_full; break;
      case serve::SubmitStatus::kRateLimited: ++t.shed_rate_limited; break;
      case serve::SubmitStatus::kQuotaExceeded: ++t.shed_quota; break;
      case serve::SubmitStatus::kOverloaded: break;  // counted in rejected
      case serve::SubmitStatus::kAccepted: break;  // unreachable on sheds
    }
    if (request_id != 0) t.request_ids.push_back(request_id);
  }
};

// Folds the accumulated per-tenant outcomes into the report (totals,
// percentiles, optional client.* registry mirror). Shared by the in-process
// and socket replay paths so both produce the same report shape.
void aggregate_report(ReplayReport& report, ReplayAccounting& acc,
                      obs::Registry* registry) {
  std::vector<double> all_latencies;
  for (auto& [tenant, outcome] : acc.tenants) {
    outcome.tenant = tenant;
    std::vector<double>& lat = acc.latencies[tenant];
    outcome.latency_p50_s = serve::percentile(lat, 50.0);
    outcome.latency_p95_s = serve::percentile(lat, 95.0);
    all_latencies.insert(all_latencies.end(), lat.begin(), lat.end());
    report.completed += outcome.completed;
    report.rejected += outcome.rejected;
    report.failed += outcome.failed;
    if (registry != nullptr) {
      // Client-side mirror of the server's serve.* counters, published per
      // tenant so a scheduler test can prove conservation: every submit is
      // exactly one of completed/shed.*/failed on BOTH sides of the wire.
      obs::Registry& reg = *registry;
      const std::string p = "client." + tenant;
      reg.counter(p + ".completed").add(
          static_cast<std::uint64_t>(outcome.completed));
      reg.counter(p + ".rejected").add(
          static_cast<std::uint64_t>(outcome.rejected));
      reg.counter(p + ".failed").add(
          static_cast<std::uint64_t>(outcome.failed));
      reg.counter(p + ".shed.queue_full").add(
          static_cast<std::uint64_t>(outcome.shed_queue_full));
      reg.counter(p + ".shed.rate_limited").add(
          static_cast<std::uint64_t>(outcome.shed_rate_limited));
      reg.counter(p + ".shed.quota").add(
          static_cast<std::uint64_t>(outcome.shed_quota));
      std::uint64_t max_id = 0;
      for (const std::uint64_t id : outcome.request_ids)
        max_id = std::max(max_id, id);
      if (max_id != 0) {
        reg.gauge(p + ".max_request_id")
            .set(static_cast<std::int64_t>(max_id));
      }
    }
    report.tenants.push_back(outcome);
  }
  report.throughput_rps =
      report.wall_s > 0.0 ? report.completed / report.wall_s : 0.0;
  report.latency_p50_s = serve::percentile(all_latencies, 50.0);
  report.latency_p99_s = serve::percentile(all_latencies, 99.0);
}

}  // namespace

ReplayReport replay_trace(const LoadTrace& trace, serve::ReconServer& server,
                          ReplayOptions options) {
  ReplayReport report;
  report.trace = trace.name;
  report.modeled_span_s = trace.modeled_span_s();
  if (trace.events.empty()) return report;

  ReplayAccounting acc;
  std::vector<std::future<serve::ServeResponse>> futures;
  std::vector<std::string> future_tenants;  // parallel to futures (sync path)
  if (!options.async) {
    futures.reserve(trace.events.size());
    future_tenants.reserve(trace.events.size());
  }

  const double t0_model = trace.events.front().arrival_s;
  const auto t0_wall = std::chrono::steady_clock::now();
  util::Stopwatch wall;
  for (const LoadEvent& ev : trace.events) {
    if (options.time_scale > 0.0) {
      const auto due =
          t0_wall + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(
                            (ev.arrival_s - t0_model) * options.time_scale));
      std::this_thread::sleep_until(due);
    }
    const std::string tenant = ev.request.tenant.empty()
                                   ? serve::TenantRegistry::kDefaultTenant
                                   : ev.request.tenant;
    if (options.async) {
      // Open-loop: account the submit as outstanding BEFORE it happens —
      // a cache hit invokes the callback inline, inside submit_async.
      {
        std::lock_guard<std::mutex> lock(acc.mu);
        ++acc.outstanding;
      }
      const serve::SubmitStatus status = server.submit_async(
          ev.request, [&acc, tenant](serve::ServeResponse resp,
                                     std::exception_ptr error) {
            acc.settled(tenant, resp, error, /*was_outstanding=*/true);
          });
      if (status != serve::SubmitStatus::kAccepted) {
        {
          std::lock_guard<std::mutex> lock(acc.mu);
          --acc.outstanding;
        }
        acc.shed(tenant, status, /*request_id=*/0);
      }
    } else {
      serve::SubmitResult res = server.submit(ev.request);
      if (res.accepted) {
        futures.push_back(std::move(res.response));
        future_tenants.push_back(tenant);
      } else {
        acc.shed(tenant, res.status, res.request_id);
      }
    }
  }

  if (options.async) {
    std::unique_lock<std::mutex> lock(acc.mu);
    acc.all_done.wait(lock, [&acc] { return acc.outstanding == 0; });
  } else {
    for (std::size_t i = 0; i < futures.size(); ++i) {
      try {
        const serve::ServeResponse resp = futures[i].get();
        acc.settled(future_tenants[i], resp, nullptr,
                    /*was_outstanding=*/false);
      } catch (const std::exception&) {
        acc.settled(future_tenants[i], serve::ServeResponse{},
                    std::current_exception(), /*was_outstanding=*/false);
      }
    }
  }
  report.wall_s = wall.elapsed_seconds();

  aggregate_report(report, acc, options.registry);
  report.server = server.stats();
  return report;
}

ReplayReport replay_trace_sockets(const LoadTrace& trace,
                                  SocketReplayOptions options) {
  ReplayReport report;
  report.trace = trace.name;
  report.modeled_span_s = trace.modeled_span_s();
  if (trace.events.empty()) return report;

  // Partition by client: one socket per modeled device, events in arrival
  // order within each (finalize_trace sorted the trace, and stable
  // partition preserves that order per client).
  std::map<int, std::vector<const LoadEvent*>> per_client;
  for (const LoadEvent& ev : trace.events) {
    per_client[ev.client_id].push_back(&ev);
  }

  ReplayAccounting acc;
  std::mutex verify_mu;  // serializes options.on_response
  const double t0_model = trace.events.front().arrival_s;
  const auto t0_wall = std::chrono::steady_clock::now();
  util::Stopwatch wall;

  std::vector<std::thread> fleet;
  fleet.reserve(per_client.size());
  for (auto& [client_id, events] : per_client) {
    std::vector<const LoadEvent*>* evs = &events;
    fleet.emplace_back([&, evs] {
      serve::WireClient client;
      std::size_t done = 0;
      try {
        client.connect(options.host, options.port,
                       options.connect_timeout_s);
        for (const LoadEvent* ev : *evs) {
          if (options.time_scale > 0.0) {
            const auto due =
                t0_wall +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(
                        (ev->arrival_s - t0_model) * options.time_scale));
            std::this_thread::sleep_until(due);
          }
          const std::string tenant =
              ev->request.tenant.empty()
                  ? std::string(serve::TenantRegistry::kDefaultTenant)
                  : ev->request.tenant;
          serve::wire::WireRequest wreq;
          wreq.client_tag = static_cast<std::uint64_t>(done);
          wreq.tenant = ev->request.tenant;
          wreq.codec = ev->request.codec;
          wreq.compressed = ev->request.compressed;
          switch (ev->request.precision) {
            case serve::TenantPrecision::kInherit: break;
            case serve::TenantPrecision::kFp32:
              wreq.precision = serve::wire::WirePrecision::kFp32;
              break;
            case serve::TenantPrecision::kInt8:
              wreq.precision = serve::wire::WirePrecision::kInt8;
              break;
          }
          const auto sent_at = std::chrono::steady_clock::now();
          const serve::wire::WireResponse resp =
              client.roundtrip(wreq);  // closed loop: one inflight
          const double latency_s =
              std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - sent_at)
                  .count();
          ++done;
          switch (resp.status) {
            case serve::wire::ResponseStatus::kOk: {
              std::lock_guard<std::mutex> lock(acc.mu);
              ReplayReport::TenantOutcome& t = acc.tenants[tenant];
              ++t.completed;
              acc.latencies[tenant].push_back(latency_s);
              if (resp.request_id != 0) {
                t.request_ids.push_back(resp.request_id);
              }
              break;
            }
            case serve::wire::ResponseStatus::kShed:
              acc.shed(tenant,
                       static_cast<serve::SubmitStatus>(resp.submit_status),
                       resp.request_id);
              break;
            case serve::wire::ResponseStatus::kFailed: {
              std::lock_guard<std::mutex> lock(acc.mu);
              ++acc.tenants[tenant].failed;
              break;
            }
          }
          if (resp.status == serve::wire::ResponseStatus::kOk &&
              options.on_response) {
            std::lock_guard<std::mutex> lock(verify_mu);
            options.on_response(*ev, resp);
          }
        }
      } catch (const std::exception&) {
        // Connect failed or the connection broke mid-replay: every event
        // this client never completed is a client-visible failure. The
        // replay finishes and reports instead of hanging.
        std::lock_guard<std::mutex> lock(acc.mu);
        for (std::size_t i = done; i < evs->size(); ++i) {
          const std::string tenant =
              (*evs)[i]->request.tenant.empty()
                  ? std::string(serve::TenantRegistry::kDefaultTenant)
                  : (*evs)[i]->request.tenant;
          ++acc.tenants[tenant].failed;
        }
      }
    });
  }
  for (std::thread& t : fleet) t.join();
  report.wall_s = wall.elapsed_seconds();

  aggregate_report(report, acc, options.registry);
  return report;
}

std::string ReplayReport::to_json() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"trace\":\"%s\",\"completed\":%d,\"rejected\":%d,\"failed\":%d,"
      "\"wall_s\":%.4f,\"modeled_span_s\":%.2f,\"throughput_rps\":%.3f,"
      "\"latency_p50_ms\":%.3f,\"latency_p99_ms\":%.3f,\"tenants\":[",
      trace.c_str(), completed, rejected, failed, wall_s, modeled_span_s,
      throughput_rps, latency_p50_s * 1e3, latency_p99_s * 1e3);
  std::string out(buf);
  for (std::size_t i = 0; i < tenants.size(); ++i) {
    const TenantOutcome& t = tenants[i];
    std::snprintf(buf, sizeof(buf),
                  "{\"tenant\":\"%s\",\"completed\":%d,\"rejected\":%d,"
                  "\"failed\":%d,\"p50_ms\":%.3f,\"p95_ms\":%.3f,"
                  "\"shed\":{\"queue_full\":%d,\"rate_limited\":%d,"
                  "\"quota\":%d},\"request_ids\":%zu}%s",
                  t.tenant.c_str(), t.completed, t.rejected, t.failed,
                  t.latency_p50_s * 1e3, t.latency_p95_s * 1e3,
                  t.shed_queue_full, t.shed_rate_limited, t.shed_quota,
                  t.request_ids.size(),
                  i + 1 < tenants.size() ? "," : "");
    out += buf;
  }
  out += "],\"server\":";
  return out + server.to_json() + "}";
}

}  // namespace easz::testbed
