#include "testbed/scenario.hpp"

#include <algorithm>

namespace easz::testbed {
namespace {

// Erase-and-squeeze is pure memory movement: ~20 byte-ops per pixel.
constexpr double kEraseSqueezeOpsPerPx = 20.0;

bool is_neural(const codec::ImageCodec& codec) {
  return codec.model_bytes() > 0;
}

}  // namespace

Scenario::Scenario(DeviceModel edge, DeviceModel server, NetworkLink link)
    : edge_(std::move(edge)), server_(std::move(server)), link_(std::move(link)) {}

PipelineCost Scenario::run_codec(const codec::ImageCodec& codec, int width,
                                 int height, double payload_bytes,
                                 CodecOverheads overheads) const {
  const bool neural = is_neural(codec);
  const double px = static_cast<double>(width) * height;

  PipelineCost cost;
  cost.latency.model_load_s =
      overheads.load_init_s +
      static_cast<double>(codec.model_bytes()) / edge_.io_bytes_per_s;
  cost.latency.encode_s =
      codec.encode_flops(width, height) /
      (neural ? edge_.nn_flops_per_s : edge_.cpu_flops_per_s);
  cost.latency.transmit_s = link_.transfer_s(payload_bytes);
  cost.latency.decode_s =
      codec.decode_flops(width, height) /
      (neural ? server_.nn_flops_per_s : server_.cpu_flops_per_s);

  cost.edge.cpu_power_w = edge_.idle_power_w + edge_.cpu_active_power_w *
                                                   (neural ? 0.6 : 1.0);
  cost.edge.gpu_power_w = neural ? edge_.gpu_active_power_w : 0.0;
  cost.edge.memory_bytes =
      edge_.base_memory_bytes + static_cast<double>(codec.model_bytes()) +
      (neural ? edge_.activation_bytes_per_px * px : 3.0 * 4.0 * px);
  return cost;
}

PipelineCost Scenario::run_easz(const codec::ImageCodec& inner,
                                const core::ReconstructionModel& model,
                                int width, int height, int erased_per_row,
                                double payload_bytes) const {
  const auto& pc = model.config().patchify;
  const int grid = pc.grid();
  const double keep_fraction =
      static_cast<double>(grid - erased_per_row) / grid;
  const double px = static_cast<double>(width) * height;
  const int squeezed_w = static_cast<int>(width * keep_fraction);

  PipelineCost cost;
  // Edge: erase-and-squeeze (CPU memory movement) + inner codec on the
  // *squeezed* image. No model load: there is nothing learned on the edge.
  cost.latency.erase_squeeze_s =
      kEraseSqueezeOpsPerPx * px / edge_.cpu_flops_per_s;
  const bool inner_neural = is_neural(inner);
  cost.latency.encode_s =
      inner.encode_flops(squeezed_w, height) /
      (inner_neural ? edge_.nn_flops_per_s : edge_.cpu_flops_per_s);
  cost.latency.model_load_s =
      static_cast<double>(inner.model_bytes()) / edge_.io_bytes_per_s;

  cost.latency.transmit_s = link_.transfer_s(payload_bytes);

  cost.latency.decode_s =
      inner.decode_flops(squeezed_w, height) /
      (inner_neural ? server_.nn_flops_per_s : server_.cpu_flops_per_s);
  const auto geom = core::padded_geometry(width, height, pc.patch);
  cost.latency.reconstruct_s =
      model.flops_per_batch(geom.patch_count(), erased_per_row) /
      server_.nn_flops_per_s;

  // Erase-and-squeeze + JPEG are memory-bound bursts, far from sustained
  // full-core load; ~30 % average CPU utilisation matches the paper's ~1 W
  // Easz encode draw.
  cost.edge.cpu_power_w = edge_.idle_power_w + 0.3 * edge_.cpu_active_power_w;
  cost.edge.gpu_power_w = 0.0;  // the paper highlights zero edge GPU power
  cost.edge.memory_bytes =
      edge_.base_memory_bytes + 3.0 * 4.0 * px +
      static_cast<double>(inner.model_bytes());
  return cost;
}

Scenario paper_testbed() {
  return Scenario(jetson_tx2(), desktop_2080ti(), wifi_link());
}

}  // namespace easz::testbed
