// Flat fp32 parameter (de)serialization.
//
// Checkpoints store a magic, the parameter count per tensor and raw floats.
// Used by examples to persist trained reconstructors and by the testbed to
// account model-load bytes.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace easz::nn {

/// Writes all parameters to `path`. Throws std::runtime_error on I/O failure.
void save_parameters(const std::vector<tensor::Tensor>& params,
                     const std::string& path);

/// Loads into existing parameters (shapes must match exactly).
void load_parameters(std::vector<tensor::Tensor>& params,
                     const std::string& path);

/// In-memory variant used by tests.
std::vector<std::uint8_t> serialize_parameters(
    const std::vector<tensor::Tensor>& params);
void deserialize_parameters(std::vector<tensor::Tensor>& params,
                            const std::vector<std::uint8_t>& bytes);

}  // namespace easz::nn
