// Flat fp32 parameter (de)serialization.
//
// Checkpoints store a magic, the parameter count per tensor and raw floats.
// Used by examples to persist trained reconstructors and by the testbed to
// account model-load bytes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace easz::nn {

/// Little-endian u32 wire helpers shared by the checkpoint formats (ESZ1
/// parameter section, EAZQ quantization sidecar) — one byte-order
/// implementation, so a bounds-check or endianness fix cannot silently
/// miss a copy.
namespace wire {

inline void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
  }
}

/// Reads at `pos` (advancing it); throws "<what>: truncated" on overrun.
inline std::uint32_t read_u32(const std::uint8_t* data, std::size_t size,
                              std::size_t& pos, const char* what) {
  if (pos + 4 > size) {
    throw std::runtime_error(std::string(what) + ": truncated");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
  }
  return v;
}

}  // namespace wire

/// Writes all parameters to `path`. Throws std::runtime_error on I/O failure.
void save_parameters(const std::vector<tensor::Tensor>& params,
                     const std::string& path);

/// Loads into existing parameters (shapes must match exactly).
void load_parameters(std::vector<tensor::Tensor>& params,
                     const std::string& path);

/// In-memory variant used by tests. deserialize_parameters reads exactly
/// the ESZ1 section and ignores anything after it (an appended EAZQ
/// sidecar, see nn/quantize.hpp, is the intended tail).
std::vector<std::uint8_t> serialize_parameters(
    const std::vector<tensor::Tensor>& params);
void deserialize_parameters(std::vector<tensor::Tensor>& params,
                            const std::vector<std::uint8_t>& bytes);

/// Byte length of the ESZ1 section at the head of `bytes` — walks the
/// per-tensor length prefixes without copying data, so a sidecar reader
/// can find its own section. Throws std::runtime_error on malformed input.
std::size_t parameters_section_size(const std::vector<std::uint8_t>& bytes);

}  // namespace easz::nn
