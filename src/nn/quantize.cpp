#include "nn/quantize.hpp"

#include <algorithm>
#include <cstring>
#include <cmath>
#include <fstream>
#include <stdexcept>

#include "nn/serialize.hpp"

namespace easz::nn {
namespace {

constexpr std::uint32_t kMagic = 0x45535A38;      // "ESZ8"
constexpr std::uint32_t kEazqMagic = 0x515A4145;  // "EAZQ"
constexpr std::uint16_t kEazqVersion = 1;

// Plausibility bounds for EAZQ dimensions: a corrupt count field must throw
// before it can drive an allocation (the byte-bounds check against the
// remaining buffer is the hard guarantee; these keep error messages clean).
constexpr std::uint32_t kMaxLayers = 4096;
constexpr std::uint32_t kMaxInFeatures = 65536;   // pack_b_s8's exact bound
constexpr std::uint32_t kMaxOutFeatures = 1U << 20;

}  // namespace

QuantizedParams quantize_int8(const std::vector<tensor::Tensor>& params) {
  QuantizedParams out;
  out.tensors.reserve(params.size());
  for (const auto& p : params) {
    QuantizedParams::Entry entry;
    float max_abs = 0.0F;
    for (const float v : p.data()) max_abs = std::max(max_abs, std::fabs(v));
    entry.scale = max_abs > 0.0F ? max_abs / 127.0F : 1.0F;
    entry.values.reserve(p.numel());
    for (const float v : p.data()) {
      const float q = std::round(v / entry.scale);
      entry.values.push_back(
          static_cast<std::int8_t>(std::clamp(q, -127.0F, 127.0F)));
    }
    out.tensors.push_back(std::move(entry));
  }
  return out;
}

void dequantize_int8(const QuantizedParams& q,
                     std::vector<tensor::Tensor>& params) {
  if (q.tensors.size() != params.size()) {
    throw std::runtime_error("dequantize_int8: tensor count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (q.tensors[i].values.size() != params[i].numel()) {
      throw std::runtime_error("dequantize_int8: tensor size mismatch");
    }
    for (std::size_t j = 0; j < params[i].numel(); ++j) {
      params[i].data()[j] =
          static_cast<float>(q.tensors[i].values[j]) * q.tensors[i].scale;
    }
  }
}

std::vector<std::uint8_t> serialize_quantized(const QuantizedParams& q) {
  std::vector<std::uint8_t> out;
  const auto push32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
    }
  };
  push32(kMagic);
  push32(static_cast<std::uint32_t>(q.tensors.size()));
  for (const auto& t : q.tensors) {
    std::uint32_t scale_bits = 0;
    static_assert(sizeof(float) == 4);
    std::memcpy(&scale_bits, &t.scale, 4);
    push32(scale_bits);
    push32(static_cast<std::uint32_t>(t.values.size()));
    const auto* raw = reinterpret_cast<const std::uint8_t*>(t.values.data());
    out.insert(out.end(), raw, raw + t.values.size());
  }
  return out;
}

QuantizedParams deserialize_quantized(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  const auto read32 = [&]() -> std::uint32_t {
    if (pos + 4 > bytes.size()) {
      throw std::runtime_error("int8 checkpoint: truncated");
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    }
    return v;
  };
  if (read32() != kMagic) {
    throw std::runtime_error("int8 checkpoint: bad magic");
  }
  QuantizedParams out;
  const std::uint32_t count = read32();
  out.tensors.resize(count);
  for (auto& t : out.tensors) {
    const std::uint32_t scale_bits = read32();
    std::memcpy(&t.scale, &scale_bits, 4);
    const std::uint32_t n = read32();
    if (pos + n > bytes.size()) {
      throw std::runtime_error("int8 checkpoint: truncated values");
    }
    t.values.resize(n);
    std::memcpy(t.values.data(), bytes.data() + pos, n);
    pos += n;
  }
  return out;
}

void save_quantized(const std::vector<tensor::Tensor>& params,
                    const std::string& path) {
  const auto bytes = serialize_quantized(quantize_int8(params));
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_quantized: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("save_quantized: write failed");
}

void load_quantized(std::vector<tensor::Tensor>& params,
                    const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("load_quantized: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("load_quantized: read failed");
  const QuantizedParams q = deserialize_quantized(bytes);
  dequantize_int8(q, params);
}

// ---- EAZQ sidecar ---------------------------------------------------------

std::size_t QuantSidecar::byte_size() const {
  std::size_t n = 4 + 2 + 4;  // magic + version + layer count
  for (const Layer& l : layers) {
    n += 4 + 4 + 4 + l.w_scale.size() * 4 + l.w_q.size();
  }
  return n;
}

std::vector<std::uint8_t> serialize_quant_sidecar(const QuantSidecar& q) {
  std::vector<std::uint8_t> out;
  out.reserve(q.byte_size());
  const auto push_f32 = [&out](float v) {
    std::uint32_t bits = 0;
    std::memcpy(&bits, &v, 4);
    wire::push_u32(out, bits);
  };
  wire::push_u32(out, kEazqMagic);
  out.push_back(static_cast<std::uint8_t>(kEazqVersion & 0xFFU));
  out.push_back(static_cast<std::uint8_t>((kEazqVersion >> 8U) & 0xFFU));
  wire::push_u32(out, static_cast<std::uint32_t>(q.layers.size()));
  for (const QuantSidecar::Layer& l : q.layers) {
    if (l.w_scale.size() != l.out ||
        l.w_q.size() != static_cast<std::size_t>(l.in) * l.out) {
      throw std::invalid_argument("EAZQ sidecar: inconsistent layer sizes");
    }
    wire::push_u32(out, l.in);
    wire::push_u32(out, l.out);
    push_f32(l.act_scale);
    for (const float s : l.w_scale) push_f32(s);
    const auto* raw = reinterpret_cast<const std::uint8_t*>(l.w_q.data());
    out.insert(out.end(), raw, raw + l.w_q.size());
  }
  return out;
}

QuantSidecar parse_quant_sidecar(const std::uint8_t* data, std::size_t size) {
  std::size_t pos = 0;
  const auto need = [&](std::size_t n) {
    if (pos + n > size) {
      throw std::runtime_error("EAZQ sidecar: truncated");
    }
  };
  const auto read32 = [&] {
    return wire::read_u32(data, size, pos, "EAZQ sidecar");
  };
  const auto read_f32 = [&]() -> float {
    const std::uint32_t bits = read32();
    float v = 0.0F;
    std::memcpy(&v, &bits, 4);
    return v;
  };
  const auto check_scale = [](float s, const char* what) {
    if (!std::isfinite(s) || s <= 0.0F) {
      throw std::runtime_error(std::string("EAZQ sidecar: corrupt ") + what +
                               " (must be finite and positive)");
    }
    return s;
  };

  if (read32() != kEazqMagic) {
    throw std::runtime_error("EAZQ sidecar: bad magic");
  }
  need(2);
  const std::uint16_t version = static_cast<std::uint16_t>(
      data[pos] | (data[pos + 1] << 8U));
  pos += 2;
  if (version != kEazqVersion) {
    throw std::runtime_error("EAZQ sidecar: unsupported version");
  }
  const std::uint32_t count = read32();
  if (count > kMaxLayers) {
    throw std::runtime_error("EAZQ sidecar: implausible layer count");
  }
  QuantSidecar out;
  out.layers.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    QuantSidecar::Layer l;
    l.in = read32();
    l.out = read32();
    if (l.in == 0 || l.out == 0 || l.in > kMaxInFeatures ||
        l.out > kMaxOutFeatures) {
      throw std::runtime_error("EAZQ sidecar: implausible layer dimensions");
    }
    l.act_scale = check_scale(read_f32(), "activation scale");
    // Bounds are checked against the remaining buffer BEFORE any
    // dimension-sized allocation, so a corrupt count cannot drive one.
    need(static_cast<std::size_t>(l.out) * 4);
    l.w_scale.reserve(l.out);
    for (std::uint32_t j = 0; j < l.out; ++j) {
      l.w_scale.push_back(check_scale(read_f32(), "weight scale"));
    }
    const std::size_t wq_bytes = static_cast<std::size_t>(l.in) * l.out;
    need(wq_bytes);
    l.w_q.resize(wq_bytes);
    std::memcpy(l.w_q.data(), data + pos, wq_bytes);
    pos += wq_bytes;
    out.layers.push_back(std::move(l));
  }
  if (pos != size) {
    throw std::runtime_error("EAZQ sidecar: trailing bytes");
  }
  return out;
}

QuantSidecar parse_quant_sidecar(const std::vector<std::uint8_t>& bytes) {
  return parse_quant_sidecar(bytes.data(), bytes.size());
}

std::vector<std::uint8_t> serialize_checkpoint_with_quant(
    const std::vector<tensor::Tensor>& params, const QuantSidecar& q) {
  std::vector<std::uint8_t> out = serialize_parameters(params);
  const std::vector<std::uint8_t> side = serialize_quant_sidecar(q);
  out.insert(out.end(), side.begin(), side.end());
  return out;
}

std::optional<QuantSidecar> deserialize_checkpoint_with_quant(
    std::vector<tensor::Tensor>& params,
    const std::vector<std::uint8_t>& bytes) {
  deserialize_parameters(params, bytes);
  const std::size_t end = parameters_section_size(bytes);
  if (end == bytes.size()) return std::nullopt;
  // Parse the tail in place: it carries the full int8 weight payload, so
  // copying it into a fresh vector first would double the load footprint.
  return parse_quant_sidecar(bytes.data() + end, bytes.size() - end);
}

void save_checkpoint_with_quant(const std::vector<tensor::Tensor>& params,
                                const QuantSidecar& q,
                                const std::string& path) {
  const auto bytes = serialize_checkpoint_with_quant(params, q);
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("save_checkpoint_with_quant: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("save_checkpoint_with_quant: write failed");
}

std::optional<QuantSidecar> load_checkpoint_with_quant(
    std::vector<tensor::Tensor>& params, const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("load_checkpoint_with_quant: cannot open " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("load_checkpoint_with_quant: read failed");
  return deserialize_checkpoint_with_quant(params, bytes);
}

double max_abs_error(const QuantizedParams& q,
                     const std::vector<tensor::Tensor>& params) {
  double worst = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::size_t j = 0; j < params[i].numel(); ++j) {
      const double deq =
          static_cast<double>(q.tensors[i].values[j]) * q.tensors[i].scale;
      worst = std::max(worst, std::fabs(deq - params[i].data()[j]));
    }
  }
  return worst;
}

}  // namespace easz::nn
