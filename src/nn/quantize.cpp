#include "nn/quantize.hpp"

#include <algorithm>
#include <cstring>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace easz::nn {
namespace {

constexpr std::uint32_t kMagic = 0x45535A38;  // "ESZ8"

}  // namespace

QuantizedParams quantize_int8(const std::vector<tensor::Tensor>& params) {
  QuantizedParams out;
  out.tensors.reserve(params.size());
  for (const auto& p : params) {
    QuantizedParams::Entry entry;
    float max_abs = 0.0F;
    for (const float v : p.data()) max_abs = std::max(max_abs, std::fabs(v));
    entry.scale = max_abs > 0.0F ? max_abs / 127.0F : 1.0F;
    entry.values.reserve(p.numel());
    for (const float v : p.data()) {
      const float q = std::round(v / entry.scale);
      entry.values.push_back(
          static_cast<std::int8_t>(std::clamp(q, -127.0F, 127.0F)));
    }
    out.tensors.push_back(std::move(entry));
  }
  return out;
}

void dequantize_int8(const QuantizedParams& q,
                     std::vector<tensor::Tensor>& params) {
  if (q.tensors.size() != params.size()) {
    throw std::runtime_error("dequantize_int8: tensor count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (q.tensors[i].values.size() != params[i].numel()) {
      throw std::runtime_error("dequantize_int8: tensor size mismatch");
    }
    for (std::size_t j = 0; j < params[i].numel(); ++j) {
      params[i].data()[j] =
          static_cast<float>(q.tensors[i].values[j]) * q.tensors[i].scale;
    }
  }
}

std::vector<std::uint8_t> serialize_quantized(const QuantizedParams& q) {
  std::vector<std::uint8_t> out;
  const auto push32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
    }
  };
  push32(kMagic);
  push32(static_cast<std::uint32_t>(q.tensors.size()));
  for (const auto& t : q.tensors) {
    std::uint32_t scale_bits = 0;
    static_assert(sizeof(float) == 4);
    std::memcpy(&scale_bits, &t.scale, 4);
    push32(scale_bits);
    push32(static_cast<std::uint32_t>(t.values.size()));
    const auto* raw = reinterpret_cast<const std::uint8_t*>(t.values.data());
    out.insert(out.end(), raw, raw + t.values.size());
  }
  return out;
}

QuantizedParams deserialize_quantized(const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  const auto read32 = [&]() -> std::uint32_t {
    if (pos + 4 > bytes.size()) {
      throw std::runtime_error("int8 checkpoint: truncated");
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    }
    return v;
  };
  if (read32() != kMagic) {
    throw std::runtime_error("int8 checkpoint: bad magic");
  }
  QuantizedParams out;
  const std::uint32_t count = read32();
  out.tensors.resize(count);
  for (auto& t : out.tensors) {
    const std::uint32_t scale_bits = read32();
    std::memcpy(&t.scale, &scale_bits, 4);
    const std::uint32_t n = read32();
    if (pos + n > bytes.size()) {
      throw std::runtime_error("int8 checkpoint: truncated values");
    }
    t.values.resize(n);
    std::memcpy(t.values.data(), bytes.data() + pos, n);
    pos += n;
  }
  return out;
}

void save_quantized(const std::vector<tensor::Tensor>& params,
                    const std::string& path) {
  const auto bytes = serialize_quantized(quantize_int8(params));
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_quantized: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("save_quantized: write failed");
}

void load_quantized(std::vector<tensor::Tensor>& params,
                    const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("load_quantized: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("load_quantized: read failed");
  const QuantizedParams q = deserialize_quantized(bytes);
  dequantize_int8(q, params);
}

double max_abs_error(const QuantizedParams& q,
                     const std::vector<tensor::Tensor>& params) {
  double worst = 0.0;
  for (std::size_t i = 0; i < params.size(); ++i) {
    for (std::size_t j = 0; j < params[i].numel(); ++j) {
      const double deq =
          static_cast<double>(q.tensors[i].values[j]) * q.tensors[i].scale;
      worst = std::max(worst, std::fabs(deq - params[i].data()[j]));
    }
  }
  return worst;
}

}  // namespace easz::nn
