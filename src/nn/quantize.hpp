// Int8 post-training weight quantization for checkpoints.
//
// The paper's Fig. 1 motivation is dominated by model-load cost; an int8
// checkpoint quarters the bytes moved (and is the standard first step of
// the model-compression direction the paper cites [23]). Quantization is
// symmetric per-tensor: w ≈ scale * q with q in [-127, 127].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace easz::nn {

/// Quantised snapshot of a parameter list.
struct QuantizedParams {
  struct Entry {
    float scale = 1.0F;
    std::vector<std::int8_t> values;
  };
  std::vector<Entry> tensors;

  [[nodiscard]] std::size_t byte_size() const {
    std::size_t n = 0;
    for (const auto& t : tensors) n += t.values.size() + sizeof(float);
    return n;
  }
};

/// Quantises every tensor symmetrically (per-tensor max-abs scaling).
QuantizedParams quantize_int8(const std::vector<tensor::Tensor>& params);

/// Writes dequantised values back into `params` (shapes must match the
/// quantisation source).
void dequantize_int8(const QuantizedParams& q,
                     std::vector<tensor::Tensor>& params);

/// Serialized int8 checkpoint (magic + per-tensor scale/size/values).
std::vector<std::uint8_t> serialize_quantized(const QuantizedParams& q);
QuantizedParams deserialize_quantized(const std::vector<std::uint8_t>& bytes);

void save_quantized(const std::vector<tensor::Tensor>& params,
                    const std::string& path);
void load_quantized(std::vector<tensor::Tensor>& params,
                    const std::string& path);

/// Max absolute dequantisation error over all tensors — bounded by
/// max|w| / 127 per tensor; exposed for tests and accuracy reporting.
double max_abs_error(const QuantizedParams& q,
                     const std::vector<tensor::Tensor>& params);

}  // namespace easz::nn
