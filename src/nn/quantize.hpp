// Int8 post-training weight quantization for checkpoints.
//
// The paper's Fig. 1 motivation is dominated by model-load cost; an int8
// checkpoint quarters the bytes moved (and is the standard first step of
// the model-compression direction the paper cites [23]). Quantization is
// symmetric per-tensor: w ≈ scale * q with q in [-127, 127].
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace easz::nn {

/// Quantised snapshot of a parameter list.
struct QuantizedParams {
  struct Entry {
    float scale = 1.0F;
    std::vector<std::int8_t> values;
  };
  std::vector<Entry> tensors;

  [[nodiscard]] std::size_t byte_size() const {
    std::size_t n = 0;
    for (const auto& t : tensors) n += t.values.size() + sizeof(float);
    return n;
  }
};

/// Quantises every tensor symmetrically (per-tensor max-abs scaling).
QuantizedParams quantize_int8(const std::vector<tensor::Tensor>& params);

/// Writes dequantised values back into `params` (shapes must match the
/// quantisation source).
void dequantize_int8(const QuantizedParams& q,
                     std::vector<tensor::Tensor>& params);

/// Serialized int8 checkpoint (magic + per-tensor scale/size/values).
std::vector<std::uint8_t> serialize_quantized(const QuantizedParams& q);
QuantizedParams deserialize_quantized(const std::vector<std::uint8_t>& bytes);

void save_quantized(const std::vector<tensor::Tensor>& params,
                    const std::string& path);
void load_quantized(std::vector<tensor::Tensor>& params,
                    const std::string& path);

/// Max absolute dequantisation error over all tensors — bounded by
/// max|w| / 127 per tensor; exposed for tests and accuracy reporting.
double max_abs_error(const QuantizedParams& q,
                     const std::vector<tensor::Tensor>& params);

// ---- EAZQ inference-quantization sidecar (DESIGN.md §7) -------------------
//
// Where the ESZ8 checkpoint above compresses STORAGE (dequantised back to
// fp32 on load), the EAZQ sidecar carries the artefacts the int8 INFERENCE
// path executes with: per-Linear activation scales from calibration plus
// per-output-channel weight scales and the s8 weights themselves. It is
// appended after the ESZ1 parameter section of a model checkpoint, so one
// file deploys both the fp32 training weights and the frozen int8 plan.
//
// Wire format (little-endian):
//   u32 magic 'EAZQ'   u16 version   u32 layer_count
//   per layer: u32 in, u32 out, f32 act_scale,
//              f32 w_scale[out], s8 w_q[in * out]
// Parsing is strict: truncation at ANY offset, trailing bytes, implausible
// dimensions and non-finite / non-positive scales all throw — a corrupt
// scale table must never reach the dequant epilogue as NaN.

struct QuantSidecar {
  struct Layer {
    std::uint32_t in = 0;
    std::uint32_t out = 0;
    float act_scale = 1.0F;
    std::vector<float> w_scale;    ///< [out]
    std::vector<std::int8_t> w_q;  ///< [in, out] row-major
  };
  std::vector<Layer> layers;

  [[nodiscard]] std::size_t byte_size() const;
};

std::vector<std::uint8_t> serialize_quant_sidecar(const QuantSidecar& q);
/// Span variant: parses `size` bytes at `data` (e.g. a checkpoint tail in
/// place — the sidecar carries the full int8 weight payload, so loaders
/// should not copy it just to parse it).
QuantSidecar parse_quant_sidecar(const std::uint8_t* data, std::size_t size);
QuantSidecar parse_quant_sidecar(const std::vector<std::uint8_t>& bytes);

/// ESZ1 parameter section + EAZQ sidecar in one buffer / file.
std::vector<std::uint8_t> serialize_checkpoint_with_quant(
    const std::vector<tensor::Tensor>& params, const QuantSidecar& q);
/// Loads the parameters and returns the sidecar if one is appended;
/// trailing bytes that are not a valid EAZQ section throw.
std::optional<QuantSidecar> deserialize_checkpoint_with_quant(
    std::vector<tensor::Tensor>& params, const std::vector<std::uint8_t>& bytes);

void save_checkpoint_with_quant(const std::vector<tensor::Tensor>& params,
                                const QuantSidecar& q, const std::string& path);
std::optional<QuantSidecar> load_checkpoint_with_quant(
    std::vector<tensor::Tensor>& params, const std::string& path);

}  // namespace easz::nn
