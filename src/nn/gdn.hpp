// Generalized Divisive Normalization (Ballé et al.) and its inverse.
//
// GDN is the activation the published learned codecs (Ballé 2017/18, MBT,
// Cheng) use between conv stages:
//
//   y_i = x_i / sqrt(beta_i + sum_j gamma_ij * x_j^2)
//
// applied per spatial position across channels. The channel mixing is a 1x1
// convolution of x^2, so the whole layer composes from existing autograd
// ops. Positivity of beta/gamma is enforced by squaring the raw parameters.
// IGDN (decoder side) multiplies by the same root instead of dividing.
#pragma once

#include "nn/module.hpp"

namespace easz::nn {

class Gdn : public Module {
 public:
  /// `inverse` selects IGDN. Raw parameters initialise so the layer starts
  /// near identity (beta ~ 1, gamma ~ small).
  Gdn(int channels, bool inverse, util::Pcg32& rng);

  /// x: [B, C, H, W] with C == channels.
  [[nodiscard]] Tensor forward(const Tensor& x) const;

  [[nodiscard]] int channels() const { return channels_; }
  [[nodiscard]] bool inverse() const { return inverse_; }

 private:
  int channels_;
  bool inverse_;
  Tensor beta_raw_;   // [C]; effective beta = beta_raw^2 + 1e-6
  Tensor gamma_raw_;  // [C, C, 1, 1]; effective gamma = gamma_raw^2
};

}  // namespace easz::nn
