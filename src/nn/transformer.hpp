// Transformer primitives: multi-head self-attention, feed-forward and the
// pre-norm transformer block used by the Easz reconstructor (paper Fig. 5:
// "three layernorms, one attention layer and one feedforward layer" per
// block).
#pragma once

#include "nn/module.hpp"

namespace easz::nn {

/// Multi-head self-attention over [B, T, D] token stacks.
///
/// Two execution paths share one set of weights: forward() builds the
/// autograd DAG (training), infer() runs the grad-free tensor::kern fast
/// path over raw spans (serving). The infer path reproduces forward's
/// results element-for-element (same per-element summation order); the
/// contract is asserted in tests/kernels_test.cpp.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int d_model, int num_heads, util::Pcg32& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// x, out: [batch * tokens, D] row-major. Parallelises over (batch, head)
  /// pairs on the kern pool; scratch comes from `ws` (no heap allocation
  /// once the arena is warm). Not safe concurrently with training.
  void infer(const float* x, float* out, int batch, int tokens,
             tensor::kern::Workspace& ws) const;

  /// Int8 variant: qkv and output projections run the quantized kernel;
  /// the attention core (scores, softmax, weighted sum) stays fp32 —
  /// activations round-trip through int8 only at layer boundaries
  /// (DESIGN.md §7). Requires quantized() == true.
  void infer_q(const float* x, float* out, int batch, int tokens,
               tensor::kern::Workspace& ws) const;

  [[nodiscard]] bool quantized() const {
    return qkv_->quantized() && proj_->quantized();
  }
  void collect_linears(std::vector<Linear*>& out) const {
    out.push_back(qkv_.get());
    out.push_back(proj_.get());
  }

  [[nodiscard]] int d_model() const { return d_model_; }
  [[nodiscard]] int num_heads() const { return heads_; }

  /// FLOPs for one forward pass over B stacks of T tokens — feeds the testbed
  /// cost model.
  [[nodiscard]] static double flops(int batch, int tokens, int d_model,
                                    int num_heads);

 private:
  // Shared fp32 attention core: qkv [B*T, 3D] -> out [B*T, D] (both the
  // fp32 and int8 paths ride it; only the projections differ).
  void attend(const float* qkv, float* out, int batch, int tokens,
              tensor::kern::Workspace& ws) const;

  int d_model_;
  int heads_;
  int head_dim_;
  std::unique_ptr<Linear> qkv_;
  std::unique_ptr<Linear> proj_;
};

/// Two-layer GELU MLP.
class FeedForward : public Module {
 public:
  FeedForward(int d_model, int hidden, util::Pcg32& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// x, out: [rows, D]. Fuses bias+GELU into the first GEMM's epilogue.
  void infer(const float* x, float* out, int rows,
             tensor::kern::Workspace& ws) const;

  /// Int8 variant: both projections quantized, dequant + bias + GELU fused
  /// into fc1's epilogue; the hidden activation re-enters int8 at fc2's
  /// boundary with its own calibrated scale.
  void infer_q(const float* x, float* out, int rows,
               tensor::kern::Workspace& ws) const;

  [[nodiscard]] bool quantized() const {
    return fc1_->quantized() && fc2_->quantized();
  }
  void collect_linears(std::vector<Linear*>& out) const {
    out.push_back(fc1_.get());
    out.push_back(fc2_.get());
  }

  [[nodiscard]] static double flops(int batch, int tokens, int d_model,
                                    int hidden);

 private:
  std::unique_ptr<Linear> fc1_;
  std::unique_ptr<Linear> fc2_;
};

/// Pre-norm block: x + Attn(LN(x)), then x + FFN(LN(x)), with a final LN —
/// the paper's three-layernorm layout.
class TransformerBlock : public Module {
 public:
  TransformerBlock(int d_model, int num_heads, int ffn_hidden,
                   util::Pcg32& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// x, out: [batch * tokens, D]; out must not alias x (the residual adds
  /// re-read x). Runs the whole block on the kern fast path.
  void infer(const float* x, float* out, int batch, int tokens,
             tensor::kern::Workspace& ws) const;

  /// Int8 variant: layernorms, residual adds and the attention core stay
  /// fp32; every Linear runs the quantized kernel.
  void infer_q(const float* x, float* out, int batch, int tokens,
               tensor::kern::Workspace& ws) const;

  [[nodiscard]] bool quantized() const {
    return attn_->quantized() && ffn_->quantized();
  }
  void collect_linears(std::vector<Linear*>& out) const {
    attn_->collect_linears(out);
    ffn_->collect_linears(out);
  }

  [[nodiscard]] static double flops(int batch, int tokens, int d_model,
                                    int num_heads, int ffn_hidden);

 private:
  std::unique_ptr<LayerNorm> ln1_;
  std::unique_ptr<MultiHeadAttention> attn_;
  std::unique_ptr<LayerNorm> ln2_;
  std::unique_ptr<FeedForward> ffn_;
  std::unique_ptr<LayerNorm> ln3_;
};

}  // namespace easz::nn
