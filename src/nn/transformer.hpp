// Transformer primitives: multi-head self-attention, feed-forward and the
// pre-norm transformer block used by the Easz reconstructor (paper Fig. 5:
// "three layernorms, one attention layer and one feedforward layer" per
// block).
#pragma once

#include "nn/module.hpp"

namespace easz::nn {

/// Multi-head self-attention over [B, T, D] token stacks.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int d_model, int num_heads, util::Pcg32& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  [[nodiscard]] int d_model() const { return d_model_; }
  [[nodiscard]] int num_heads() const { return heads_; }

  /// FLOPs for one forward pass over B stacks of T tokens — feeds the testbed
  /// cost model.
  [[nodiscard]] static double flops(int batch, int tokens, int d_model,
                                    int num_heads);

 private:
  int d_model_;
  int heads_;
  int head_dim_;
  std::unique_ptr<Linear> qkv_;
  std::unique_ptr<Linear> proj_;
};

/// Two-layer GELU MLP.
class FeedForward : public Module {
 public:
  FeedForward(int d_model, int hidden, util::Pcg32& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  [[nodiscard]] static double flops(int batch, int tokens, int d_model,
                                    int hidden);

 private:
  std::unique_ptr<Linear> fc1_;
  std::unique_ptr<Linear> fc2_;
};

/// Pre-norm block: x + Attn(LN(x)), then x + FFN(LN(x)), with a final LN —
/// the paper's three-layernorm layout.
class TransformerBlock : public Module {
 public:
  TransformerBlock(int d_model, int num_heads, int ffn_hidden,
                   util::Pcg32& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  [[nodiscard]] static double flops(int batch, int tokens, int d_model,
                                    int num_heads, int ffn_hidden);

 private:
  std::unique_ptr<LayerNorm> ln1_;
  std::unique_ptr<MultiHeadAttention> attn_;
  std::unique_ptr<LayerNorm> ln2_;
  std::unique_ptr<FeedForward> ffn_;
  std::unique_ptr<LayerNorm> ln3_;
};

}  // namespace easz::nn
