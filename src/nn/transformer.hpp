// Transformer primitives: multi-head self-attention, feed-forward and the
// pre-norm transformer block used by the Easz reconstructor (paper Fig. 5:
// "three layernorms, one attention layer and one feedforward layer" per
// block).
#pragma once

#include "nn/module.hpp"

namespace easz::nn {

/// Multi-head self-attention over [B, T, D] token stacks.
///
/// Two execution paths share one set of weights: forward() builds the
/// autograd DAG (training), infer() runs the grad-free tensor::kern fast
/// path over raw spans (serving). The infer path reproduces forward's
/// results element-for-element (same per-element summation order); the
/// contract is asserted in tests/kernels_test.cpp.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int d_model, int num_heads, util::Pcg32& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// x, out: [batch * tokens, D] row-major. Parallelises over (batch, head)
  /// pairs on the kern pool; scratch comes from `ws` (no heap allocation
  /// once the arena is warm). Not safe concurrently with training.
  void infer(const float* x, float* out, int batch, int tokens,
             tensor::kern::Workspace& ws) const;

  [[nodiscard]] int d_model() const { return d_model_; }
  [[nodiscard]] int num_heads() const { return heads_; }

  /// FLOPs for one forward pass over B stacks of T tokens — feeds the testbed
  /// cost model.
  [[nodiscard]] static double flops(int batch, int tokens, int d_model,
                                    int num_heads);

 private:
  int d_model_;
  int heads_;
  int head_dim_;
  std::unique_ptr<Linear> qkv_;
  std::unique_ptr<Linear> proj_;
};

/// Two-layer GELU MLP.
class FeedForward : public Module {
 public:
  FeedForward(int d_model, int hidden, util::Pcg32& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// x, out: [rows, D]. Fuses bias+GELU into the first GEMM's epilogue.
  void infer(const float* x, float* out, int rows,
             tensor::kern::Workspace& ws) const;

  [[nodiscard]] static double flops(int batch, int tokens, int d_model,
                                    int hidden);

 private:
  std::unique_ptr<Linear> fc1_;
  std::unique_ptr<Linear> fc2_;
};

/// Pre-norm block: x + Attn(LN(x)), then x + FFN(LN(x)), with a final LN —
/// the paper's three-layernorm layout.
class TransformerBlock : public Module {
 public:
  TransformerBlock(int d_model, int num_heads, int ffn_hidden,
                   util::Pcg32& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// x, out: [batch * tokens, D]; out must not alias x (the residual adds
  /// re-read x). Runs the whole block on the kern fast path.
  void infer(const float* x, float* out, int batch, int tokens,
             tensor::kern::Workspace& ws) const;

  [[nodiscard]] static double flops(int batch, int tokens, int d_model,
                                    int num_heads, int ffn_hidden);

 private:
  std::unique_ptr<LayerNorm> ln1_;
  std::unique_ptr<MultiHeadAttention> attn_;
  std::unique_ptr<LayerNorm> ln2_;
  std::unique_ptr<FeedForward> ffn_;
  std::unique_ptr<LayerNorm> ln3_;
};

}  // namespace easz::nn
