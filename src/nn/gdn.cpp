#include "nn/gdn.hpp"

#include <cmath>
#include <stdexcept>

namespace easz::nn {

Gdn::Gdn(int channels, bool inverse, util::Pcg32& rng)
    : channels_(channels), inverse_(inverse) {
  // beta_raw = 1 -> beta = 1; gamma_raw small + identity emphasis so the
  // initial transform is close to y = x / sqrt(1 + 0.1 x_i^2).
  beta_raw_ = register_param(Tensor::full({channels}, 1.0F));
  beta_raw_.node()->requires_grad = true;
  Tensor gamma = Tensor::randn({channels, channels, 1, 1}, rng, 0.01F, true);
  for (int c = 0; c < channels; ++c) {
    gamma.data()[(static_cast<std::size_t>(c) * channels + c)] = 0.316F;  // ~sqrt(0.1)
  }
  gamma_raw_ = register_param(gamma);
}

Tensor Gdn::forward(const Tensor& x) const {
  if (x.rank() != 4 || x.dim(1) != channels_) {
    throw std::invalid_argument("Gdn: expected [B, C, H, W] with C=" +
                                std::to_string(channels_));
  }
  const Tensor x2 = tensor::mul(x, x);
  const Tensor gamma_eff = tensor::mul(gamma_raw_, gamma_raw_);
  const Tensor beta_eff = tensor::add_scalar(
      tensor::mul(beta_raw_, beta_raw_), 1e-6F);
  // 1x1 conv mixes channels: denom = beta + gamma * x^2.
  const Tensor denom =
      tensor::conv2d(x2, gamma_eff, beta_eff, /*stride=*/1, /*pad=*/0);
  if (inverse_) {
    return tensor::mul(x, tensor::sqrt_op(denom));
  }
  return tensor::mul(x, tensor::rsqrt(denom));
}

}  // namespace easz::nn
