#include "nn/transformer.hpp"

#include <cmath>
#include <stdexcept>

namespace easz::nn {

MultiHeadAttention::MultiHeadAttention(int d_model, int num_heads,
                                       util::Pcg32& rng)
    : d_model_(d_model), heads_(num_heads), head_dim_(d_model / num_heads) {
  if (d_model % num_heads != 0) {
    throw std::invalid_argument("MHA: d_model must be divisible by heads");
  }
  qkv_ = std::make_unique<Linear>(d_model, 3 * d_model, rng);
  proj_ = std::make_unique<Linear>(d_model, d_model, rng);
  absorb(*qkv_);
  absorb(*proj_);
}

Tensor MultiHeadAttention::forward(const Tensor& x) const {
  if (x.rank() != 3 || x.dim(2) != d_model_) {
    throw std::invalid_argument("MHA: expected [B, T, D] with D=" +
                                std::to_string(d_model_));
  }
  const int b = x.dim(0);
  const int t = x.dim(1);

  const Tensor qkv = qkv_->forward(x);  // [B, T, 3D]
  const float inv_sqrt_d =
      1.0F / std::sqrt(static_cast<float>(head_dim_));

  // Per-head attention via last-dim slices; each head sees [B, T, head_dim].
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(heads_);
  for (int h = 0; h < heads_; ++h) {
    const Tensor q = tensor::slice_last(qkv, h * head_dim_, head_dim_);
    const Tensor k =
        tensor::slice_last(qkv, d_model_ + h * head_dim_, head_dim_);
    const Tensor v =
        tensor::slice_last(qkv, 2 * d_model_ + h * head_dim_, head_dim_);
    const Tensor scores =
        tensor::scale(tensor::bmm(q, k, /*transpose_b=*/true), inv_sqrt_d);
    const Tensor weights = tensor::softmax(scores);  // [B, T, T]
    head_outputs.push_back(tensor::bmm(weights, v)); // [B, T, head_dim]
  }
  const Tensor merged = tensor::concat_last(head_outputs);  // [B, T, D]
  (void)b;
  (void)t;
  return proj_->forward(merged);
}

void MultiHeadAttention::attend(const float* qkv, float* out, int batch,
                                int tokens, tensor::kern::Workspace& ws) const {
  namespace kern = tensor::kern;
  const int d = d_model_;
  const int hd = head_dim_;
  const std::size_t qkv_ld = 3 * static_cast<std::size_t>(d);

  float* scores = ws.alloc(static_cast<std::size_t>(batch) * heads_ * tokens *
                           tokens);  // one [T, T] slab per (batch, head)

  const float inv_sqrt_d = 1.0F / std::sqrt(static_cast<float>(hd));
  // One task per (batch, head): Q K^T -> softmax -> weights V, all on
  // strided views into the qkv buffer (no per-head slice copies). Inner
  // kernels run serial — the parallelism is the task fan-out itself.
  kern::parallel_for(batch * heads_, [&](int task) {
    const int bi = task / heads_;
    const int h = task % heads_;
    const float* base = qkv + static_cast<std::size_t>(bi) * tokens * qkv_ld;
    const float* q = base + static_cast<std::size_t>(h) * hd;
    const float* k = base + d + static_cast<std::size_t>(h) * hd;
    const float* v = base + 2 * static_cast<std::size_t>(d) +
                     static_cast<std::size_t>(h) * hd;
    float* sc = scores + static_cast<std::size_t>(task) * tokens * tokens;

    kern::GemmOpts score_opts;
    score_opts.transpose_b = true;
    score_opts.scale = inv_sqrt_d;
    score_opts.parallel = false;
    kern::gemm(q, qkv_ld, k, qkv_ld, sc, static_cast<std::size_t>(tokens),
               tokens, hd, tokens, score_opts);
    kern::softmax_rows(sc, static_cast<std::size_t>(tokens), tokens,
                       /*parallel=*/false);

    float* mp = out + static_cast<std::size_t>(bi) * tokens * d +
                static_cast<std::size_t>(h) * hd;
    kern::GemmOpts apply_opts;
    apply_opts.parallel = false;
    kern::gemm(sc, static_cast<std::size_t>(tokens), v, qkv_ld, mp,
               static_cast<std::size_t>(d), tokens, tokens, hd, apply_opts);
  });
}

void MultiHeadAttention::infer(const float* x, float* out, int batch,
                               int tokens, tensor::kern::Workspace& ws) const {
  const std::size_t rows = static_cast<std::size_t>(batch) * tokens;
  float* qkv = ws.alloc(rows * 3 * static_cast<std::size_t>(d_model_));
  qkv_->infer(x, qkv, static_cast<int>(rows));
  float* merged = ws.alloc(rows * static_cast<std::size_t>(d_model_));
  attend(qkv, merged, batch, tokens, ws);
  proj_->infer(merged, out, static_cast<int>(rows));
}

void MultiHeadAttention::infer_q(const float* x, float* out, int batch,
                                 int tokens,
                                 tensor::kern::Workspace& ws) const {
  const std::size_t rows = static_cast<std::size_t>(batch) * tokens;
  float* qkv = ws.alloc(rows * 3 * static_cast<std::size_t>(d_model_));
  qkv_->infer_q(x, qkv, static_cast<int>(rows));
  float* merged = ws.alloc(rows * static_cast<std::size_t>(d_model_));
  attend(qkv, merged, batch, tokens, ws);
  proj_->infer_q(merged, out, static_cast<int>(rows));
}

double MultiHeadAttention::flops(int batch, int tokens, int d_model,
                                 int num_heads) {
  (void)num_heads;  // head split does not change the op count
  const double bt = static_cast<double>(batch) * tokens;
  const double qkv = bt * 3.0 * d_model * d_model * 2.0;
  const double scores = static_cast<double>(batch) * tokens * tokens * d_model * 2.0;
  const double apply = scores;
  const double proj = bt * d_model * d_model * 2.0;
  return qkv + scores + apply + proj;
}

FeedForward::FeedForward(int d_model, int hidden, util::Pcg32& rng) {
  fc1_ = std::make_unique<Linear>(d_model, hidden, rng);
  fc2_ = std::make_unique<Linear>(hidden, d_model, rng);
  absorb(*fc1_);
  absorb(*fc2_);
}

Tensor FeedForward::forward(const Tensor& x) const {
  return fc2_->forward(tensor::gelu(fc1_->forward(x)));
}

void FeedForward::infer(const float* x, float* out, int rows,
                        tensor::kern::Workspace& ws) const {
  float* hidden = ws.alloc(static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(fc1_->out_features()));
  fc1_->infer(x, hidden, rows, /*fuse_gelu=*/true);
  fc2_->infer(hidden, out, rows);
}

void FeedForward::infer_q(const float* x, float* out, int rows,
                          tensor::kern::Workspace& ws) const {
  float* hidden = ws.alloc(static_cast<std::size_t>(rows) *
                           static_cast<std::size_t>(fc1_->out_features()));
  fc1_->infer_q(x, hidden, rows, /*fuse_gelu=*/true);
  fc2_->infer_q(hidden, out, rows);
}

double FeedForward::flops(int batch, int tokens, int d_model, int hidden) {
  return static_cast<double>(batch) * tokens * d_model * hidden * 4.0;
}

TransformerBlock::TransformerBlock(int d_model, int num_heads, int ffn_hidden,
                                   util::Pcg32& rng) {
  ln1_ = std::make_unique<LayerNorm>(d_model);
  attn_ = std::make_unique<MultiHeadAttention>(d_model, num_heads, rng);
  ln2_ = std::make_unique<LayerNorm>(d_model);
  ffn_ = std::make_unique<FeedForward>(d_model, ffn_hidden, rng);
  ln3_ = std::make_unique<LayerNorm>(d_model);
  absorb(*ln1_);
  absorb(*attn_);
  absorb(*ln2_);
  absorb(*ffn_);
  absorb(*ln3_);
}

Tensor TransformerBlock::forward(const Tensor& x) const {
  const Tensor a = tensor::add(x, attn_->forward(ln1_->forward(x)));
  const Tensor f = tensor::add(a, ffn_->forward(ln2_->forward(a)));
  return ln3_->forward(f);
}

void TransformerBlock::infer(const float* x, float* out, int batch, int tokens,
                             tensor::kern::Workspace& ws) const {
  namespace kern = tensor::kern;
  const std::size_t rows = static_cast<std::size_t>(batch) * tokens;
  const std::size_t n = rows * static_cast<std::size_t>(attn_->d_model());

  float* normed = ws.alloc(n);
  ln1_->infer(x, normed, rows);
  float* attn = ws.alloc(n);
  attn_->infer(normed, attn, batch, tokens, ws);
  kern::add_rows(x, attn, attn, n);  // attn = x + Attn(LN1(x))

  ln2_->infer(attn, normed, rows);  // normed buffer reused
  float* ffn = ws.alloc(n);
  ffn_->infer(normed, ffn, static_cast<int>(rows), ws);
  kern::add_rows(attn, ffn, ffn, n);

  ln3_->infer(ffn, out, rows);
}

void TransformerBlock::infer_q(const float* x, float* out, int batch,
                               int tokens, tensor::kern::Workspace& ws) const {
  namespace kern = tensor::kern;
  const std::size_t rows = static_cast<std::size_t>(batch) * tokens;
  const std::size_t n = rows * static_cast<std::size_t>(attn_->d_model());

  float* normed = ws.alloc(n);
  ln1_->infer(x, normed, rows);
  float* attn = ws.alloc(n);
  attn_->infer_q(normed, attn, batch, tokens, ws);
  kern::add_rows(x, attn, attn, n);  // attn = x + Attn(LN1(x))

  ln2_->infer(attn, normed, rows);  // normed buffer reused
  float* ffn = ws.alloc(n);
  ffn_->infer_q(normed, ffn, static_cast<int>(rows), ws);
  kern::add_rows(attn, ffn, ffn, n);

  ln3_->infer(ffn, out, rows);
}

double TransformerBlock::flops(int batch, int tokens, int d_model,
                               int num_heads, int ffn_hidden) {
  return MultiHeadAttention::flops(batch, tokens, d_model, num_heads) +
         FeedForward::flops(batch, tokens, d_model, ffn_hidden) +
         static_cast<double>(batch) * tokens * d_model * 15.0;  // layernorms
}

}  // namespace easz::nn
