// Neural-network building blocks on top of the tensor library.
//
// Modules own their parameters (leaf tensors with requires_grad) and expose
// them via parameters() for the optimizer and the serializer. Construction
// takes the RNG so weight init is deterministic per seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/prng.hpp"

namespace easz::nn {

using tensor::Tensor;

/// Numeric path of a grad-free forward. kInt8 requires the module to have
/// been quantized (calibrate + build_quant / EAZQ sidecar); training always
/// runs fp32.
enum class Precision { kFp32, kInt8 };

/// "fp32" / "int8" — used by serve stats and flag parsing.
const char* precision_name(Precision p);

/// Calibration mode: while on, every Linear::infer records the absmax of
/// its input into observed_absmax(). Single-threaded by contract — run the
/// calibration forwards from one thread with no concurrent serving.
void set_calibration(bool on);
[[nodiscard]] bool calibration_active();

/// Base class: parameter registry.
class Module {
 public:
  virtual ~Module() = default;

  /// All learnable parameters, in a stable order (serialization relies on it).
  [[nodiscard]] std::vector<Tensor> parameters() const { return params_; }

  [[nodiscard]] std::size_t num_parameters() const {
    std::size_t n = 0;
    for (const Tensor& p : params_) n += p.numel();
    return n;
  }

  /// Serialized fp32 size — the "model size"/"load latency" quantity in the
  /// paper's Fig. 1 and Table I.
  [[nodiscard]] std::size_t model_bytes() const {
    return num_parameters() * sizeof(float);
  }

 protected:
  Tensor register_param(Tensor t) {
    params_.push_back(t);
    return t;
  }
  void absorb(const Module& child) {
    for (const Tensor& p : child.parameters()) params_.push_back(p);
  }

 private:
  std::vector<Tensor> params_;
};

/// Fully-connected layer: y = x W + b, x = [..., in], W = [in, out].
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, util::Pcg32& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// Grad-free fast path: y[rows, out] = x[rows, in] W + b over raw spans,
  /// reading the SAME parameter tensors as forward (a shared-weights view,
  /// nothing is duplicated). `fuse_gelu` applies GELU in the GEMM epilogue
  /// (the FFN's first projection). Not safe concurrently with training.
  void infer(const float* x, float* y, int rows, bool fuse_gelu = false,
             bool parallel = true) const;

  // ---- int8 path (DESIGN.md §7) ----

  /// Frozen int8 artefacts of one layer. w_q/w_scale/act_scale are the
  /// serialized truth (EAZQ sidecar); packed/col_sum/dq_scale are derived
  /// deterministically on install.
  struct QuantState {
    float act_scale = 1.0F;             ///< input u8 step (zero point 128)
    std::vector<float> w_scale;         ///< [out] per-output-channel steps
    std::vector<std::int8_t> w_q;       ///< [in, out] row-major
    std::vector<float> dq_scale;        ///< [out] act_scale * w_scale
    std::vector<std::int32_t> col_sum;  ///< [out] zero-point correction
    tensor::kern::PackedBInt8 packed;
  };

  [[nodiscard]] bool quantized() const { return quant_ != nullptr; }
  [[nodiscard]] const QuantState& quant() const;  ///< throws if !quantized()

  /// Input absmax recorded by infer() while calibration mode was on.
  [[nodiscard]] float observed_absmax() const { return observed_absmax_; }

  /// Forgets previous observations. Call before a fresh calibration pass:
  /// observations accumulate across passes by design (more samples widen
  /// the range), so RE-calibration against a new distribution must start
  /// from zero or it silently keeps the widest range ever seen.
  void reset_observed_absmax() { observed_absmax_ = 0.0F; }

  /// Quantizes the CURRENT weights per output channel (symmetric, +-127)
  /// and freezes `act_absmax` as the activation range. Deterministic:
  /// identical weights + absmax produce identical bytes on every machine.
  void build_quant(float act_absmax);

  /// Installs quantization parsed from an EAZQ sidecar (no calibration
  /// run needed). Throws on dimension mismatch or non-positive scales.
  void apply_quant(float act_scale, std::vector<float> w_scale,
                   std::vector<std::int8_t> w_q);

  /// Int8 fast path: statically-quantized input (u8, calibrated scale),
  /// exact-i32 GEMM, fused dequant + bias (+ GELU) epilogue back to fp32.
  /// Row results are row-local (static scales), so batch pooling is exact.
  /// Throws std::logic_error if not quantized.
  void infer_q(const float* x, float* y, int rows, bool fuse_gelu = false,
               bool parallel = true) const;

  [[nodiscard]] int in_features() const { return in_; }
  [[nodiscard]] int out_features() const { return out_; }

 private:
  int in_;
  int out_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]
  std::unique_ptr<QuantState> quant_;
  mutable float observed_absmax_ = 0.0F;  // written only in calibration mode
};

/// LayerNorm with learnable affine parameters.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// Grad-free fast path over raw spans; y may alias x.
  void infer(const float* x, float* y, std::size_t rows,
             bool parallel = true) const;

  [[nodiscard]] int dim() const { return gamma_.dim(0); }

 private:
  Tensor gamma_;
  Tensor beta_;
};

}  // namespace easz::nn
