// Neural-network building blocks on top of the tensor library.
//
// Modules own their parameters (leaf tensors with requires_grad) and expose
// them via parameters() for the optimizer and the serializer. Construction
// takes the RNG so weight init is deterministic per seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/kernels.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/prng.hpp"

namespace easz::nn {

using tensor::Tensor;

/// Base class: parameter registry.
class Module {
 public:
  virtual ~Module() = default;

  /// All learnable parameters, in a stable order (serialization relies on it).
  [[nodiscard]] std::vector<Tensor> parameters() const { return params_; }

  [[nodiscard]] std::size_t num_parameters() const {
    std::size_t n = 0;
    for (const Tensor& p : params_) n += p.numel();
    return n;
  }

  /// Serialized fp32 size — the "model size"/"load latency" quantity in the
  /// paper's Fig. 1 and Table I.
  [[nodiscard]] std::size_t model_bytes() const {
    return num_parameters() * sizeof(float);
  }

 protected:
  Tensor register_param(Tensor t) {
    params_.push_back(t);
    return t;
  }
  void absorb(const Module& child) {
    for (const Tensor& p : child.parameters()) params_.push_back(p);
  }

 private:
  std::vector<Tensor> params_;
};

/// Fully-connected layer: y = x W + b, x = [..., in], W = [in, out].
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, util::Pcg32& rng);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// Grad-free fast path: y[rows, out] = x[rows, in] W + b over raw spans,
  /// reading the SAME parameter tensors as forward (a shared-weights view,
  /// nothing is duplicated). `fuse_gelu` applies GELU in the GEMM epilogue
  /// (the FFN's first projection). Not safe concurrently with training.
  void infer(const float* x, float* y, int rows, bool fuse_gelu = false,
             bool parallel = true) const;

  [[nodiscard]] int in_features() const { return in_; }
  [[nodiscard]] int out_features() const { return out_; }

 private:
  int in_;
  int out_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]
};

/// LayerNorm with learnable affine parameters.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int dim);

  [[nodiscard]] Tensor forward(const Tensor& x) const;

  /// Grad-free fast path over raw spans; y may alias x.
  void infer(const float* x, float* y, std::size_t rows,
             bool parallel = true) const;

  [[nodiscard]] int dim() const { return gamma_.dim(0); }

 private:
  Tensor gamma_;
  Tensor beta_;
};

}  // namespace easz::nn
