#include "nn/module.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace easz::nn {

namespace {

// Calibration is single-threaded by contract (see set_calibration); a plain
// global keeps the serving hot path to one relaxed-cost bool read.
bool g_calibrating = false;

}  // namespace

const char* precision_name(Precision p) {
  return p == Precision::kInt8 ? "int8" : "fp32";
}

void set_calibration(bool on) { g_calibrating = on; }

bool calibration_active() { return g_calibrating; }

Linear::Linear(int in_features, int out_features, util::Pcg32& rng)
    : in_(in_features), out_(out_features) {
  const float stddev = 1.0F / std::sqrt(static_cast<float>(in_features));
  weight_ = register_param(
      Tensor::randn({in_features, out_features}, rng, stddev, true));
  Tensor b({out_features}, true);
  bias_ = register_param(b);
}

void Linear::infer(const float* x, float* y, int rows, bool fuse_gelu,
                   bool parallel) const {
  if (g_calibrating) {
    float mx = observed_absmax_;
    const std::size_t count = static_cast<std::size_t>(rows) * in_;
    for (std::size_t i = 0; i < count; ++i) mx = std::max(mx, std::fabs(x[i]));
    observed_absmax_ = mx;
  }
  tensor::kern::GemmOpts opts;
  opts.bias = bias_.data().data();
  opts.gelu = fuse_gelu;
  opts.parallel = parallel;
  tensor::kern::gemm(x, static_cast<std::size_t>(in_), weight_.data().data(),
                     static_cast<std::size_t>(out_), y,
                     static_cast<std::size_t>(out_), rows, in_, out_, opts);
}

const Linear::QuantState& Linear::quant() const {
  if (!quant_) throw std::logic_error("Linear: not quantized");
  return *quant_;
}

void Linear::build_quant(float act_absmax) {
  const std::vector<float>& w = weight_.data();
  std::vector<float> w_scale(static_cast<std::size_t>(out_));
  std::vector<std::int8_t> w_q(w.size());
  for (int j = 0; j < out_; ++j) {
    float mx = 0.0F;
    for (int p = 0; p < in_; ++p) {
      mx = std::max(mx, std::fabs(w[static_cast<std::size_t>(p) * out_ + j]));
    }
    const float scale = mx > 0.0F ? mx / 127.0F : 1.0F;
    w_scale[static_cast<std::size_t>(j)] = scale;
    const float inv = 1.0F / scale;
    for (int p = 0; p < in_; ++p) {
      const std::size_t idx = static_cast<std::size_t>(p) * out_ + j;
      // lrintf (nearest-even) everywhere the int8 path rounds: the same
      // instruction on every x86-64 machine, so quantized bytes are stable.
      const long q = std::lrintf(w[idx] * inv);
      w_q[idx] = static_cast<std::int8_t>(std::clamp<long>(q, -127, 127));
    }
  }
  apply_quant(act_absmax > 0.0F ? act_absmax / 127.0F : 1.0F,
              std::move(w_scale), std::move(w_q));
}

void Linear::apply_quant(float act_scale, std::vector<float> w_scale,
                         std::vector<std::int8_t> w_q) {
  if (w_scale.size() != static_cast<std::size_t>(out_) ||
      w_q.size() != static_cast<std::size_t>(in_) * out_) {
    throw std::invalid_argument("Linear: quant state dimension mismatch");
  }
  if (!std::isfinite(act_scale) || act_scale <= 0.0F) {
    throw std::invalid_argument("Linear: activation scale must be positive");
  }
  for (const float s : w_scale) {
    if (!std::isfinite(s) || s <= 0.0F) {
      throw std::invalid_argument("Linear: weight scales must be positive");
    }
  }
  auto q = std::make_unique<QuantState>();
  q->act_scale = act_scale;
  q->w_scale = std::move(w_scale);
  q->w_q = std::move(w_q);
  q->dq_scale.resize(static_cast<std::size_t>(out_));
  q->col_sum.assign(static_cast<std::size_t>(out_), 0);
  for (int j = 0; j < out_; ++j) {
    q->dq_scale[static_cast<std::size_t>(j)] =
        act_scale * q->w_scale[static_cast<std::size_t>(j)];
    std::int32_t cs = 0;
    for (int p = 0; p < in_; ++p) {
      cs += q->w_q[static_cast<std::size_t>(p) * out_ + j];
    }
    q->col_sum[static_cast<std::size_t>(j)] = cs;
  }
  q->packed = tensor::kern::pack_b_s8(q->w_q.data(), in_, out_);
  quant_ = std::move(q);
}

void Linear::infer_q(const float* x, float* y, int rows, bool fuse_gelu,
                     bool parallel) const {
  const QuantState& q = quant();  // throws when not quantized
  // Grow-only per-thread staging for the quantized input; the GEMM consumes
  // it before returning, so one buffer per thread suffices even with the
  // pool splitting the row panels.
  static thread_local std::vector<std::uint8_t> qbuf;
  const std::size_t count = static_cast<std::size_t>(rows) * in_;
  if (qbuf.size() < count) qbuf.resize(count);
  tensor::kern::quantize_rows_u8(x, qbuf.data(), count, q.act_scale);

  tensor::kern::QuantGemmOpts opts;
  opts.bias = bias_.data().data();
  opts.gelu = fuse_gelu;
  opts.parallel = parallel;
  tensor::kern::gemm_u8s8(qbuf.data(), static_cast<std::size_t>(in_), q.packed,
                          y, static_cast<std::size_t>(out_), rows, in_, out_,
                          q.dq_scale.data(), q.col_sum.data(), opts);
}

Tensor Linear::forward(const Tensor& x) const {
  // Flatten leading dims into rows for the 2-D matmul, then restore.
  tensor::Shape orig = x.shape();
  if (orig.back() != in_) {
    throw std::invalid_argument("Linear: expected last dim " +
                                std::to_string(in_));
  }
  const int rows = static_cast<int>(x.numel()) / in_;
  Tensor flat = x.reshape({rows, in_});
  Tensor y = tensor::add_broadcast(tensor::matmul(flat, weight_), bias_);
  tensor::Shape out_shape = orig;
  out_shape.back() = out_;
  return y.reshape(out_shape);
}

LayerNorm::LayerNorm(int dim) {
  gamma_ = register_param(Tensor::full({dim}, 1.0F));
  gamma_.node()->requires_grad = true;
  Tensor b({dim}, true);
  beta_ = register_param(b);
}

Tensor LayerNorm::forward(const Tensor& x) const {
  return tensor::layernorm(x, gamma_, beta_);
}

void LayerNorm::infer(const float* x, float* y, std::size_t rows,
                      bool parallel) const {
  tensor::kern::layernorm_rows(x, gamma_.data().data(), beta_.data().data(), y,
                               rows, gamma_.dim(0), 1e-5F, parallel);
}

}  // namespace easz::nn
