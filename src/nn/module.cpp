#include "nn/module.hpp"

#include <cmath>

namespace easz::nn {

Linear::Linear(int in_features, int out_features, util::Pcg32& rng)
    : in_(in_features), out_(out_features) {
  const float stddev = 1.0F / std::sqrt(static_cast<float>(in_features));
  weight_ = register_param(
      Tensor::randn({in_features, out_features}, rng, stddev, true));
  Tensor b({out_features}, true);
  bias_ = register_param(b);
}

void Linear::infer(const float* x, float* y, int rows, bool fuse_gelu,
                   bool parallel) const {
  tensor::kern::GemmOpts opts;
  opts.bias = bias_.data().data();
  opts.gelu = fuse_gelu;
  opts.parallel = parallel;
  tensor::kern::gemm(x, static_cast<std::size_t>(in_), weight_.data().data(),
                     static_cast<std::size_t>(out_), y,
                     static_cast<std::size_t>(out_), rows, in_, out_, opts);
}

Tensor Linear::forward(const Tensor& x) const {
  // Flatten leading dims into rows for the 2-D matmul, then restore.
  tensor::Shape orig = x.shape();
  if (orig.back() != in_) {
    throw std::invalid_argument("Linear: expected last dim " +
                                std::to_string(in_));
  }
  const int rows = static_cast<int>(x.numel()) / in_;
  Tensor flat = x.reshape({rows, in_});
  Tensor y = tensor::add_broadcast(tensor::matmul(flat, weight_), bias_);
  tensor::Shape out_shape = orig;
  out_shape.back() = out_;
  return y.reshape(out_shape);
}

LayerNorm::LayerNorm(int dim) {
  gamma_ = register_param(Tensor::full({dim}, 1.0F));
  gamma_.node()->requires_grad = true;
  Tensor b({dim}, true);
  beta_ = register_param(b);
}

Tensor LayerNorm::forward(const Tensor& x) const {
  return tensor::layernorm(x, gamma_, beta_);
}

void LayerNorm::infer(const float* x, float* y, std::size_t rows,
                      bool parallel) const {
  tensor::kern::layernorm_rows(x, gamma_.data().data(), beta_.data().data(), y,
                               rows, gamma_.dim(0), 1e-5F, parallel);
}

}  // namespace easz::nn
