#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace easz::nn {
namespace {

constexpr std::uint32_t kMagic = 0x45535A31;  // "ESZ1"

// Single ESZ1 walker: validates the section structure and, when `params`
// is non-null, copies tensor data out along the way. Returns the byte
// offset one past the section, so parameters_section_size and
// deserialize_parameters can never disagree about where the section ends
// (an appended EAZQ sidecar is parsed from exactly that offset).
std::size_t walk_parameters(const std::vector<std::uint8_t>& bytes,
                            std::vector<tensor::Tensor>* params) {
  std::size_t pos = 0;
  const auto read32 = [&] {
    return wire::read_u32(bytes.data(), bytes.size(), pos, "checkpoint");
  };
  if (read32() != kMagic) throw std::runtime_error("checkpoint: bad magic");
  const std::uint32_t count = read32();
  if (params != nullptr && count != params->size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t n = read32();
    if (params != nullptr && n != (*params)[i].numel()) {
      throw std::runtime_error("checkpoint: tensor size mismatch");
    }
    const std::size_t byte_len = static_cast<std::size_t>(n) * sizeof(float);
    if (pos + byte_len > bytes.size()) {
      throw std::runtime_error("checkpoint: truncated tensor data");
    }
    if (params != nullptr) {
      std::memcpy((*params)[i].data().data(), bytes.data() + pos, byte_len);
    }
    pos += byte_len;
  }
  return pos;
}

}  // namespace

std::vector<std::uint8_t> serialize_parameters(
    const std::vector<tensor::Tensor>& params) {
  std::vector<std::uint8_t> out;
  wire::push_u32(out, kMagic);
  wire::push_u32(out, static_cast<std::uint32_t>(params.size()));
  for (const auto& p : params) {
    wire::push_u32(out, static_cast<std::uint32_t>(p.numel()));
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(p.data().data());
    out.insert(out.end(), bytes, bytes + p.numel() * sizeof(float));
  }
  return out;
}

void deserialize_parameters(std::vector<tensor::Tensor>& params,
                            const std::vector<std::uint8_t>& bytes) {
  (void)walk_parameters(bytes, &params);
}

std::size_t parameters_section_size(const std::vector<std::uint8_t>& bytes) {
  return walk_parameters(bytes, nullptr);
}

void save_parameters(const std::vector<tensor::Tensor>& params,
                     const std::string& path) {
  const auto bytes = serialize_parameters(params);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_parameters: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("save_parameters: write failed");
}

void load_parameters(std::vector<tensor::Tensor>& params,
                     const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("load_parameters: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("load_parameters: read failed");
  deserialize_parameters(params, bytes);
}

}  // namespace easz::nn
