#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace easz::nn {
namespace {

constexpr std::uint32_t kMagic = 0x45535A31;  // "ESZ1"

}  // namespace

std::vector<std::uint8_t> serialize_parameters(
    const std::vector<tensor::Tensor>& params) {
  std::vector<std::uint8_t> out;
  const auto push32 = [&out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFU));
    }
  };
  push32(kMagic);
  push32(static_cast<std::uint32_t>(params.size()));
  for (const auto& p : params) {
    push32(static_cast<std::uint32_t>(p.numel()));
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(p.data().data());
    out.insert(out.end(), bytes, bytes + p.numel() * sizeof(float));
  }
  return out;
}

void deserialize_parameters(std::vector<tensor::Tensor>& params,
                            const std::vector<std::uint8_t>& bytes) {
  std::size_t pos = 0;
  const auto read32 = [&]() -> std::uint32_t {
    if (pos + 4 > bytes.size()) {
      throw std::runtime_error("checkpoint: truncated");
    }
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
    }
    return v;
  };
  if (read32() != kMagic) throw std::runtime_error("checkpoint: bad magic");
  const std::uint32_t count = read32();
  if (count != params.size()) {
    throw std::runtime_error("checkpoint: parameter count mismatch");
  }
  for (auto& p : params) {
    const std::uint32_t n = read32();
    if (n != p.numel()) {
      throw std::runtime_error("checkpoint: tensor size mismatch");
    }
    const std::size_t byte_len = static_cast<std::size_t>(n) * sizeof(float);
    if (pos + byte_len > bytes.size()) {
      throw std::runtime_error("checkpoint: truncated tensor data");
    }
    std::memcpy(p.data().data(), bytes.data() + pos, byte_len);
    pos += byte_len;
  }
}

void save_parameters(const std::vector<tensor::Tensor>& params,
                     const std::string& path) {
  const auto bytes = serialize_parameters(params);
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_parameters: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("save_parameters: write failed");
}

void load_parameters(std::vector<tensor::Tensor>& params,
                     const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("load_parameters: cannot open " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("load_parameters: read failed");
  deserialize_parameters(params, bytes);
}

}  // namespace easz::nn
