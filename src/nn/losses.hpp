// Training losses, including the perceptual-proxy loss standing in for LPIPS.
//
// Paper Eq. (2): Loss = L1(x, y) + lambda * LPIPS(x, y) with lambda = 0.3.
// LPIPS needs pretrained VGG features, unavailable offline; PerceptualLoss
// computes L1 distance in a *fixed* multi-orientation edge/blur feature space
// (Sobel pairs + Laplacian + local mean at two scales). Like LPIPS it is a
// distance in a fixed feature space that emphasises structure over absolute
// pixel values (see DESIGN.md §2).
#pragma once

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace easz::nn {

/// L1 + lambda * perceptual-proxy. `pred`/`target` are [B, C, H, W] image
/// batches in [0, 1].
class CombinedLoss {
 public:
  explicit CombinedLoss(float lambda = 0.3F) : lambda_(lambda) {}

  [[nodiscard]] tensor::Tensor forward(const tensor::Tensor& pred,
                                       const tensor::Tensor& target) const;

  [[nodiscard]] float lambda() const { return lambda_; }

 private:
  float lambda_;
};

/// Feature-space L1: fixed 3x3 filter bank (identity-blur, Sobel-x, Sobel-y,
/// Laplacian) applied depthwise, distance averaged over maps.
tensor::Tensor perceptual_proxy_loss(const tensor::Tensor& pred,
                                     const tensor::Tensor& target);

}  // namespace easz::nn
