#include "nn/adam.hpp"

#include <cmath>

namespace easz::nn {

Adam::Adam(std::vector<tensor::Tensor> params, AdamConfig config)
    : params_(std::move(params)), config_(config) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (std::size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(params_[i].numel(), 0.0F);
    v_[i].assign(params_[i].numel(), 0.0F);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0F - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 = 1.0F - std::pow(config_.beta2, static_cast<float>(t_));
  for (std::size_t p = 0; p < params_.size(); ++p) {
    auto& node = *params_[p].node();
    if (node.grad.empty()) continue;  // parameter unused this step
    auto& m = m_[p];
    auto& v = v_[p];
    for (std::size_t i = 0; i < node.data.size(); ++i) {
      const float g = node.grad[i];
      m[i] = config_.beta1 * m[i] + (1.0F - config_.beta1) * g;
      v[i] = config_.beta2 * v[i] + (1.0F - config_.beta2) * g * g;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      // Decoupled weight decay (AdamW).
      node.data[i] -= config_.lr * (mhat / (std::sqrt(vhat) + config_.eps) +
                                    config_.weight_decay * node.data[i]);
    }
    node.grad.clear();
  }
}

void Adam::zero_grad() {
  for (auto& p : params_) p.node()->grad.clear();
}

}  // namespace easz::nn
