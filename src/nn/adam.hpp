// Adam optimizer with decoupled weight decay (AdamW), matching the paper's
// training hyperparameters (lr 2.8e-4, weight decay 0.05).
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace easz::nn {

struct AdamConfig {
  float lr = 2.8e-4F;
  float beta1 = 0.9F;
  float beta2 = 0.999F;
  float eps = 1e-8F;
  float weight_decay = 0.05F;
};

class Adam {
 public:
  Adam(std::vector<tensor::Tensor> params, AdamConfig config = {});

  /// Applies one update from the gradients currently stored on the
  /// parameters, then clears those gradients.
  void step();

  /// Clears parameter gradients without updating.
  void zero_grad();

  [[nodiscard]] std::int64_t step_count() const { return t_; }
  [[nodiscard]] AdamConfig& config() { return config_; }

 private:
  std::vector<tensor::Tensor> params_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  AdamConfig config_;
  std::int64_t t_ = 0;
};

}  // namespace easz::nn
