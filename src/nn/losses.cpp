#include "nn/losses.hpp"

#include <array>

namespace easz::nn {
namespace {

using tensor::Tensor;

// Fixed filter bank: blur, Sobel-x, Sobel-y, Laplacian. Applied to every
// input channel independently (depthwise) by building a [4*C, C, 3, 3]
// weight with zeros off the diagonal.
Tensor fixed_bank_weight(int channels) {
  static constexpr std::array<std::array<float, 9>, 4> kFilters = {{
      {1 / 16.0F, 2 / 16.0F, 1 / 16.0F, 2 / 16.0F, 4 / 16.0F, 2 / 16.0F,
       1 / 16.0F, 2 / 16.0F, 1 / 16.0F},                        // blur
      {-1, 0, 1, -2, 0, 2, -1, 0, 1},                           // sobel x
      {-1, -2, -1, 0, 0, 0, 1, 2, 1},                           // sobel y
      {0, 1, 0, 1, -4, 1, 0, 1, 0},                             // laplacian
  }};
  Tensor w({4 * channels, channels, 3, 3});
  for (int f = 0; f < 4; ++f) {
    for (int c = 0; c < channels; ++c) {
      const int co = f * channels + c;
      for (int i = 0; i < 9; ++i) {
        w.data()[((static_cast<std::size_t>(co) * channels + c) * 3 + i / 3) *
                     3 + i % 3] = kFilters[f][i];
      }
    }
  }
  return w;
}

}  // namespace

tensor::Tensor perceptual_proxy_loss(const tensor::Tensor& pred,
                                     const tensor::Tensor& target) {
  if (pred.rank() != 4) {
    throw std::invalid_argument("perceptual_proxy_loss: need [B,C,H,W]");
  }
  const int c = pred.dim(1);
  const Tensor bank = fixed_bank_weight(c);
  const Tensor none;
  const Tensor fp = tensor::conv2d(pred, bank, none, /*stride=*/1, /*pad=*/1);
  const Tensor ft = tensor::conv2d(target, bank, none, 1, 1);
  return tensor::l1_loss(fp, ft);
}

tensor::Tensor CombinedLoss::forward(const tensor::Tensor& pred,
                                     const tensor::Tensor& target) const {
  const Tensor l1 = tensor::l1_loss(pred, target);
  const Tensor perceptual = perceptual_proxy_loss(pred, target);
  return tensor::add(l1, tensor::scale(perceptual, lambda_));
}

}  // namespace easz::nn
