#include "util/prng.hpp"

#include <cmath>

namespace easz::util {

Pcg32::Pcg32(std::uint64_t seed, std::uint64_t seq) {
  state_ = 0U;
  inc_ = (seq << 1U) | 1U;
  next_u32();
  state_ += seed;
  next_u32();
}

std::uint32_t Pcg32::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted =
      static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
  const auto rot = static_cast<std::uint32_t>(old >> 59U);
  return (xorshifted >> rot) | (xorshifted << ((32U - rot) & 31U));
}

std::uint32_t Pcg32::next_below(std::uint32_t bound) {
  // Lemire-style rejection to remove modulo bias.
  const std::uint32_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

int Pcg32::next_int(int lo, int hi) {
  const auto span = static_cast<std::uint32_t>(hi - lo + 1);
  return lo + static_cast<int>(next_below(span));
}

float Pcg32::next_float() {
  return static_cast<float>(next_u32() >> 8U) * (1.0F / 16777216.0F);
}

double Pcg32::next_double() {
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  const std::uint64_t bits53 = ((hi << 21U) ^ lo) & ((1ULL << 53U) - 1U);
  return static_cast<double>(bits53) * (1.0 / 9007199254740992.0);
}

float Pcg32::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  float u1 = next_float();
  const float u2 = next_float();
  if (u1 < 1e-12F) u1 = 1e-12F;
  const float mag = std::sqrt(-2.0F * std::log(u1));
  const float two_pi_u2 = 6.28318530717958647692F * u2;
  cached_gaussian_ = mag * std::sin(two_pi_u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(two_pi_u2);
}

Pcg32 Pcg32::split() {
  const std::uint64_t seed =
      (static_cast<std::uint64_t>(next_u32()) << 32U) | next_u32();
  const std::uint64_t seq =
      (static_cast<std::uint64_t>(next_u32()) << 32U) | next_u32();
  return Pcg32(seed, seq);
}

}  // namespace easz::util
