// Strict numeric parsing for CLI flags (tools/ and bench mains).
//
// std::atoi turns "junk" into 0 silently — and for easz_serve, workers=0 is
// the MANUAL-STEPPING harness mode, so `--workers junk` used to start a
// server that never makes progress. Every tool flag therefore goes through
// these helpers instead: the whole token must parse, the value must fit the
// declared range, and anything else throws std::invalid_argument naming the
// flag so main() can print the message and exit non-zero.
#pragma once

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

namespace easz::util {

/// Parses `text` as a base-10 integer in [min, max]. Rejects empty input,
/// leading/trailing garbage ("12x", " 12", "1.5"), and out-of-range values.
/// `what` names the flag/field in the error message.
inline long long parse_int(const std::string& text, const std::string& what,
                           long long min = std::numeric_limits<long long>::min(),
                           long long max = std::numeric_limits<long long>::max()) {
  if (text.empty()) {
    throw std::invalid_argument(what + ": expected an integer, got \"\"");
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) {
    throw std::invalid_argument(what + ": expected an integer, got \"" + text +
                                "\"");
  }
  if (v < min || v > max) {
    throw std::invalid_argument(what + ": value " + text + " out of range [" +
                                std::to_string(min) + ", " +
                                std::to_string(max) + "]");
  }
  return v;
}

/// parse_int with an int-sized result (the common flag shape).
inline int parse_int32(const std::string& text, const std::string& what,
                       int min = std::numeric_limits<int>::min(),
                       int max = std::numeric_limits<int>::max()) {
  return static_cast<int>(parse_int(text, what, min, max));
}

/// Parses `text` as a finite double in [min, max]. Same strictness contract
/// as parse_int: the whole token must be consumed and NaN/inf are rejected
/// (no flag in this project means anything useful at infinity).
inline double parse_double(const std::string& text, const std::string& what,
                           double min = std::numeric_limits<double>::lowest(),
                           double max = std::numeric_limits<double>::max()) {
  if (text.empty()) {
    throw std::invalid_argument(what + ": expected a number, got \"\"");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      !(v >= std::numeric_limits<double>::lowest() &&
        v <= std::numeric_limits<double>::max())) {
    throw std::invalid_argument(what + ": expected a number, got \"" + text +
                                "\"");
  }
  if (v < min || v > max) {
    throw std::invalid_argument(what + ": value " + text + " out of range");
  }
  return v;
}

}  // namespace easz::util
