// Deterministic pseudo-random number generation for the whole project.
//
// Every stochastic component (erase-mask sampling, weight init, synthetic
// datasets, noise injection in tests) draws from Pcg32 so that runs are
// reproducible from a single seed. PCG32 (O'Neill, 2014) is small, fast and
// statistically strong enough for simulation workloads.
#pragma once

#include <cstdint>
#include <vector>

namespace easz::util {

/// 32-bit permuted-congruential generator (PCG-XSH-RR variant).
class Pcg32 {
 public:
  /// Seeds the generator. `seq` selects one of 2^63 independent streams.
  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL);

  /// Next uniform 32-bit value.
  std::uint32_t next_u32();

  /// Uniform integer in [0, bound) without modulo bias. `bound` must be > 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int next_int(int lo, int hi);

  /// Uniform float in [0, 1).
  float next_float();

  /// Uniform double in [0, 1).
  double next_double();

  /// Standard normal via Box-Muller (caches the second deviate).
  float next_gaussian();

  /// Fisher-Yates shuffle of `v`.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const std::size_t j = next_below(static_cast<std::uint32_t>(i + 1));
      std::swap(v[i], v[j]);
    }
  }

  /// Returns a generator for an independent stream derived from this one.
  /// Useful to give each worker/module its own reproducible stream.
  Pcg32 split();

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  bool has_cached_gaussian_ = false;
  float cached_gaussian_ = 0.0F;
};

}  // namespace easz::util
