// Plain-text table printer used by every bench binary so that figure/table
// reproductions are emitted in a uniform, grep-able format.
#pragma once

#include <string>
#include <vector>

namespace easz::util {

/// Accumulates rows of strings and renders an aligned ASCII table.
///
/// Example output:
///   | method | BPP   | Brisque |
///   |--------|-------|---------|
///   | JPEG   | 0.412 | 43.06   |
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; it may have fewer cells than the header (padded empty).
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with `precision` decimal digits.
  static std::string num(double v, int precision = 3);

  /// Renders the aligned table, one trailing newline.
  [[nodiscard]] std::string to_string() const;

  /// Renders to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace easz::util
