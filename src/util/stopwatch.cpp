#include "util/stopwatch.hpp"

// Header-only in practice; this TU anchors the library target.
