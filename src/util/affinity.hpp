// Thread/CPU affinity helpers (DESIGN.md §9.3).
//
// Pinning is a HINT everywhere it is used: every function here degrades to
// a harmless no-op (returning false / 0) on platforms without a thread
// affinity API, and callers must not change behaviour on failure. The serve
// runtime pins its stage workers and the tensor::kern lanes round-robin so
// a worker's slot tables and packed-B tiles stay in one core's private
// caches instead of bouncing with the scheduler.
#pragma once

#include <thread>

namespace easz::util {

/// CPUs available to this process (its affinity mask when the platform
/// exposes one, else hardware_concurrency). 0 when even that is unknown.
[[nodiscard]] int affinity_cpu_count();

/// Pins `thread` to logical CPU `cpu` (index into the process's affinity
/// set). Returns true on success, false on failure or unsupported
/// platforms — callers treat both the same.
bool pin_thread_to_cpu(std::thread& thread, int cpu);

/// Pins the calling thread. Same contract as pin_thread_to_cpu.
bool pin_current_thread_to_cpu(int cpu);

}  // namespace easz::util
