// Minimal argv flag scanning shared by the tool/bench mains.
//
// Flags are space-separated ("--name value"); the last occurrence does NOT
// win — the first match is returned, matching the historical behaviour of
// the per-main copies this replaces.
#pragma once

#include <cstring>

namespace easz::util {

/// Value following `name` in argv, or `fallback` when absent.
inline const char* flag_value(int argc, char** argv, const char* name,
                              const char* fallback) {
  for (int i = 0; i < argc - 1; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return fallback;
}

/// True when the bare flag `name` appears anywhere in argv.
inline bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

}  // namespace easz::util
