#include "util/affinity.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#include <vector>
#endif

namespace easz::util {

#if defined(__linux__)

namespace {

// The process's allowed CPUs, in index order. cgroup/taskset restrictions
// make "cpu i" and "the i-th allowed cpu" different things; pinning must
// honour the mask or setaffinity fails outright inside containers.
std::vector<int> allowed_cpus() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) != 0) return {};
  std::vector<int> cpus;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &set)) cpus.push_back(cpu);
  }
  return cpus;
}

bool pin_native(pthread_t handle, int cpu) {
  const std::vector<int> cpus = allowed_cpus();
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpus[static_cast<std::size_t>(cpu) % cpus.size()], &set);
  return pthread_setaffinity_np(handle, sizeof(set), &set) == 0;
}

}  // namespace

int affinity_cpu_count() {
  const std::vector<int> cpus = allowed_cpus();
  if (!cpus.empty()) return static_cast<int>(cpus.size());
  return static_cast<int>(std::thread::hardware_concurrency());
}

bool pin_thread_to_cpu(std::thread& thread, int cpu) {
  if (cpu < 0 || !thread.joinable()) return false;
  return pin_native(thread.native_handle(), cpu);
}

bool pin_current_thread_to_cpu(int cpu) {
  if (cpu < 0) return false;
  return pin_native(pthread_self(), cpu);
}

#else  // graceful no-op elsewhere (macOS has no public setaffinity)

int affinity_cpu_count() {
  return static_cast<int>(std::thread::hardware_concurrency());
}

bool pin_thread_to_cpu(std::thread&, int) { return false; }

bool pin_current_thread_to_cpu(int) { return false; }

#endif

}  // namespace easz::util
