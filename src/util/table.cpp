#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace easz::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t c = 0; c < header_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return out + "\n";
  };

  std::string out = render_row(header_);
  out += "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += std::string(width[c] + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace easz::util
