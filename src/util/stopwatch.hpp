// Wall-clock stopwatch for measuring real CPU execution of pipeline stages.
//
// The testbed simulator (src/testbed) models *target-device* latency
// analytically; Stopwatch measures what actually ran on this host (e.g. for
// Fig. 7c's inference-time axis).
#pragma once

#include <chrono>

namespace easz::util {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace easz::util
